open Bionav_util
open Bionav_core
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database
module Snapshot = Bionav_store.Snapshot
module Eu = Bionav_search.Eutils
module Engine = Bionav_engine.Engine
module Http = Bionav_web.Http
module App = Bionav_web.App
module Plan_cache = Bionav_prefetch.Plan_cache
module Speculator = Bionav_prefetch.Speculator
module Prefetch = Bionav_prefetch.Prefetch

let fp = Probability.default_model.Probability.fingerprint

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Same corpus as test_engine: a seeded, findable query word. *)
let world =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:211 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 500;
         seeded_groups =
           [
             {
               G.tag = Some "cancer";
               cluster = [ List.nth deep 0; List.nth deep 7 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:212 h in
     (DB.of_medline m, Eu.create m))

let cancer_nav =
  lazy
    (let db, eu = Lazy.force world in
     Nav_tree.of_database db (Eu.esearch eu "cancer"))

let engine ?config ?snapshot () =
  let database, eutils = Lazy.force world in
  Engine.create ?config ?snapshot ~database ~eutils ()

let must_session = function
  | Ok (Engine.Session s) -> s
  | Ok Engine.No_results -> Alcotest.fail "unexpected No_results"
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let prefetch_config = { Engine.default_config with prefetch = Some Prefetch.default_config }

let next_expandable active =
  List.find_opt (Active_tree.is_expandable active) (Active_tree.visible active)

(* Expand until every visible component is a singleton, recording the
   (node, revealed) trace — the byte-level navigation transcript. *)
let drain session =
  let rec loop fuel acc =
    if fuel = 0 then Alcotest.fail "drain: expansion did not terminate"
    else
      match next_expandable (Navigation.active session) with
      | None -> List.rev acc
      | Some n ->
          let revealed = Navigation.expand session n in
          if revealed = [] then Alcotest.fail "drain: empty reveal on expandable node"
          else loop (fuel - 1) ((n, revealed) :: acc)
  in
  loop 10_000 []

let drain_engine session =
  let rec loop fuel =
    if fuel = 0 then Alcotest.fail "drain: expansion did not terminate"
    else
      match next_expandable (Navigation.active (Engine.navigation session)) with
      | None -> ()
      | Some n ->
          ignore (Engine.expand session n);
          loop (fuel - 1)
  in
  loop 10_000

(* --- plan cache -------------------------------------------------------- *)

let test_plan_cache_roundtrip () =
  let c = Plan_cache.create () in
  Alcotest.(check (option (list int))) "cold miss" None
    (Plan_cache.find c ~fingerprint:fp ~query:"cancer" ~root:0 ~members:(Docset.of_list [ 0; 1; 2 ]));
  Plan_cache.store c ~fingerprint:fp ~query:"  Cancer " ~root:0 ~members:(Docset.of_list [ 0; 1; 2 ]) ~cut:[ 1; 2 ];
  Alcotest.(check (option (list int))) "hit under normalized variant" (Some [ 1; 2 ])
    (Plan_cache.find c ~fingerprint:fp ~query:"CANCER" ~root:0 ~members:(Docset.of_list [ 0; 1; 2 ]));
  Alcotest.(check (option (list int))) "different members miss" None
    (Plan_cache.find c ~fingerprint:fp ~query:"cancer" ~root:0 ~members:(Docset.of_list [ 0; 1; 3 ]));
  Alcotest.(check (option (list int))) "different root miss" None
    (Plan_cache.find c ~fingerprint:fp ~query:"cancer" ~root:1 ~members:(Docset.of_list [ 0; 1; 2 ]));
  Alcotest.(check (option (list int))) "different query miss" None
    (Plan_cache.find c ~fingerprint:fp ~query:"histones" ~root:0 ~members:(Docset.of_list [ 0; 1; 2 ]));
  Alcotest.(check int) "one entry" 1 (Plan_cache.length c);
  Alcotest.(check int) "hits" 1 (Plan_cache.hits c);
  Alcotest.(check int) "misses" 4 (Plan_cache.misses c)

let test_plan_cache_empty_cut_ignored () =
  let c = Plan_cache.create () in
  Plan_cache.store c ~fingerprint:fp ~query:"q" ~root:3 ~members:(Docset.of_list [ 3; 4 ]) ~cut:[];
  Alcotest.(check int) "nothing stored" 0 (Plan_cache.length c);
  Alcotest.(check (option (list int))) "still a miss" None
    (Plan_cache.find c ~fingerprint:fp ~query:"q" ~root:3 ~members:(Docset.of_list [ 3; 4 ]))

let test_plan_cache_mem_is_pure () =
  let c = Plan_cache.create () in
  Plan_cache.store c ~fingerprint:fp ~query:"q" ~root:0 ~members:(Docset.of_list [ 0; 1 ]) ~cut:[ 1 ];
  Alcotest.(check bool) "mem hit" true (Plan_cache.mem c ~fingerprint:fp ~query:"q" ~root:0 ~members:(Docset.of_list [ 0; 1 ]));
  Alcotest.(check bool) "mem miss" false (Plan_cache.mem c ~fingerprint:fp ~query:"q" ~root:9 ~members:(Docset.of_list [ 9 ]));
  Alcotest.(check int) "no hits recorded" 0 (Plan_cache.hits c);
  Alcotest.(check int) "no misses recorded" 0 (Plan_cache.misses c)

let test_plan_cache_capacity_and_clear () =
  let c = Plan_cache.create ~capacity:1 () in
  Plan_cache.store c ~fingerprint:fp ~query:"a" ~root:0 ~members:(Docset.of_list [ 0; 1 ]) ~cut:[ 1 ];
  Plan_cache.store c ~fingerprint:fp ~query:"b" ~root:0 ~members:(Docset.of_list [ 0; 1 ]) ~cut:[ 1 ];
  Alcotest.(check int) "LRU bound holds" 1 (Plan_cache.length c);
  Alcotest.(check bool) "older evicted" false
    (Plan_cache.mem c ~fingerprint:fp ~query:"a" ~root:0 ~members:(Docset.of_list [ 0; 1 ]));
  ignore (Plan_cache.find c ~fingerprint:fp ~query:"b" ~root:0 ~members:(Docset.of_list [ 0; 1 ]));
  Plan_cache.clear c;
  Alcotest.(check int) "emptied" 0 (Plan_cache.length c);
  Alcotest.(check int) "hits zeroed" 0 (Plan_cache.hits c);
  Alcotest.(check int) "misses zeroed" 0 (Plan_cache.misses c)

let test_plan_cache_fingerprint_keying () =
  (* The stale-plan guarantee: a plan stored under one model fingerprint
     is invisible under any other, so a model refresh (new fingerprint)
     can never serve a cut computed under superseded probabilities. *)
  let c = Plan_cache.create () in
  let members = Docset.of_list [ 0; 1; 2 ] in
  Plan_cache.store c ~fingerprint:fp ~query:"cancer" ~root:0 ~members ~cut:[ 1; 2 ];
  Alcotest.(check (option (list int))) "same fingerprint hits" (Some [ 1; 2 ])
    (Plan_cache.find c ~fingerprint:fp ~query:"cancer" ~root:0 ~members);
  Alcotest.(check (option (list int))) "other fingerprint misses" None
    (Plan_cache.find c ~fingerprint:"learned/50/10/16/10/e1" ~query:"cancer" ~root:0 ~members);
  Alcotest.(check bool) "mem agrees" false
    (Plan_cache.mem c ~fingerprint:"learned/50/10/16/10/e1" ~query:"cancer" ~root:0 ~members)

(* --- served plans are byte-identical ----------------------------------- *)

let test_cached_replay_is_byte_identical () =
  let nav = Lazy.force cancer_nav in
  let reference = Navigation.start (Navigation.bionav ()) nav in
  let trace_ref = drain reference in
  Alcotest.(check bool) "fixture is navigable" true (List.length trace_ref > 1);
  let cache = Plan_cache.create () in
  let source () = Some (Plan_cache.plan_source cache ~query:"cancer" ~fingerprint:fp) in
  let warming = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source warming (source ());
  let trace_warm = drain warming in
  Alcotest.(check bool) "warming run matches plain run" true (trace_ref = trace_warm);
  Alcotest.(check bool) "plans were stored" true (Plan_cache.length cache > 0);
  let hits_before = Plan_cache.hits cache in
  let replay = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source replay (source ());
  let trace_replay = drain replay in
  Alcotest.(check bool) "cached replay byte-identical" true (trace_ref = trace_replay);
  Alcotest.(check int) "every EXPAND served from cache" (List.length trace_ref)
    (Plan_cache.hits cache - hits_before);
  (* Served plans skip the solver: the expand records carry the marker. *)
  List.iter
    (fun r ->
      Alcotest.(check (float 0.)) "no solver time" 0. r.Navigation.elapsed_ms;
      Alcotest.(check int) "no reduced tree" 0 r.Navigation.reduced_size)
    (Navigation.stats replay).Navigation.history

(* --- speculator -------------------------------------------------------- *)

(* One root EXPAND on the cancer tree plus the state speculation ranks. *)
let root_reveal () =
  let nav = Lazy.force cancer_nav in
  let s = Navigation.start (Navigation.bionav ()) nav in
  let revealed = Navigation.expand s (Nav_tree.root nav) in
  let active = Navigation.active s in
  let expandable = List.filter (Active_tree.is_expandable active) revealed in
  Alcotest.(check bool) "fixture reveals >= 2 expandable nodes" true
    (List.length expandable >= 2);
  (active, revealed)

let observe spec ~active ~revealed =
  Speculator.observe spec ~query:"cancer" ~active ~k:Heuristic.default_k
    ~model:Probability.default_model ~revealed

let test_speculator_budget_ticks () =
  let active, revealed = root_reveal () in
  let cache = Plan_cache.create () in
  let spec = Speculator.create ~top_m:2 ~max_queue:8 cache in
  observe spec ~active ~revealed;
  Alcotest.(check int) "top-m queued" 2 (Speculator.queue_length spec);
  Alcotest.(check int) "budget 0 runs nothing" 0 (Speculator.tick spec ~budget:0);
  Alcotest.(check int) "still queued" 2 (Speculator.queue_length spec);
  Alcotest.(check int) "budget 1 runs one" 1 (Speculator.tick spec ~budget:1);
  Alcotest.(check int) "one left" 1 (Speculator.queue_length spec);
  Alcotest.(check int) "surplus budget drains" 1 (Speculator.tick spec ~budget:10);
  Alcotest.(check int) "queue empty" 0 (Speculator.queue_length spec);
  Alcotest.(check int) "executed" 2 (Speculator.executed spec);
  Alcotest.(check int) "two plans cached" 2 (Plan_cache.length cache);
  (* Re-observing the same reveal enqueues nothing: plans are cached now. *)
  observe spec ~active ~revealed;
  Alcotest.(check int) "cached candidates skipped" 0 (Speculator.queue_length spec)

let test_speculator_is_deterministic () =
  let run () =
    let active, revealed = root_reveal () in
    let cache = Plan_cache.create () in
    let spec = Speculator.create ~top_m:4 ~max_queue:16 cache in
    observe spec ~active ~revealed;
    ignore (Speculator.tick spec ~budget:max_int);
    let plans =
      List.filter_map
        (fun n ->
          let members = Active_tree.component_set active n in
          Option.map (fun cut -> (n, cut)) (Plan_cache.find cache ~fingerprint:fp ~query:"cancer" ~root:n ~members))
        revealed
    in
    (Speculator.executed spec, plans)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two identical runs, identical plans" true (a = b);
  Alcotest.(check bool) "speculation happened" true (fst a > 0)

let test_speculated_plan_matches_foreground () =
  let nav = Lazy.force cancer_nav in
  let cache = Plan_cache.create () in
  let spec = Speculator.create ~top_m:4 ~max_queue:16 cache in
  let s1 = Navigation.start (Navigation.bionav ()) nav in
  let revealed = Navigation.expand s1 (Nav_tree.root nav) in
  let active1 = Navigation.active s1 in
  observe spec ~active:active1 ~revealed;
  Alcotest.(check bool) "jobs queued" true (Speculator.queue_length spec > 0);
  ignore (Speculator.tick spec ~budget:max_int);
  let target =
    List.find
      (fun n ->
        Plan_cache.mem cache ~fingerprint:fp ~query:"cancer" ~root:n ~members:(Active_tree.component_set active1 n))
      revealed
  in
  (* Replay: the speculated plan serves the follow-up EXPAND... *)
  let s2 = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source s2 (Some (Plan_cache.plan_source cache ~query:"cancer" ~fingerprint:fp));
  Alcotest.(check (list int)) "same root reveal" revealed (Navigation.expand s2 (Nav_tree.root nav));
  let hits_before = Plan_cache.hits cache in
  let served = Navigation.expand s2 target in
  Alcotest.(check int) "served from cache" (hits_before + 1) (Plan_cache.hits cache);
  (* ...and is byte-identical to what a cold session computes. *)
  let s3 = Navigation.start (Navigation.bionav ()) nav in
  ignore (Navigation.expand s3 (Nav_tree.root nav));
  Alcotest.(check (list int)) "speculated cut = foreground cut" (Navigation.expand s3 target) served

let test_speculator_overflow_drops_new_job () =
  let active, revealed = root_reveal () in
  let cache = Plan_cache.create () in
  let spec = Speculator.create ~top_m:2 ~max_queue:1 cache in
  observe spec ~active ~revealed;
  Alcotest.(check int) "bounded queue" 1 (Speculator.queue_length spec);
  Alcotest.(check int) "overflow dropped" 1 (Speculator.dropped spec)

let test_speculator_drop_query () =
  let active, revealed = root_reveal () in
  let cache = Plan_cache.create () in
  let spec = Speculator.create ~top_m:2 ~max_queue:8 cache in
  observe spec ~active ~revealed;
  let queued = Speculator.queue_length spec in
  Alcotest.(check int) "unrelated query drops nothing" 0 (Speculator.drop_query spec "histones");
  Alcotest.(check int) "queue untouched" queued (Speculator.queue_length spec);
  Alcotest.(check int) "normalized variant drops all" queued
    (Speculator.drop_query spec "  Cancer ");
  Alcotest.(check int) "queue empty" 0 (Speculator.queue_length spec);
  Alcotest.(check int) "drops counted" queued (Speculator.dropped spec);
  Alcotest.(check int) "nothing left to tick" 0 (Speculator.tick spec ~budget:8)

(* --- snapshot format --------------------------------------------------- *)

let sample_entries () =
  [
    { Snapshot.query = "alpha"; results = Intset.of_list [ 1; 5; 9 ]; root_cut = [ 2; 3 ] };
    { Snapshot.query = "beta"; results = Intset.empty; root_cut = [] };
  ]

let test_snapshot_roundtrip () =
  let db, _ = Lazy.force world in
  let entries = sample_entries () in
  let back = Snapshot.decode ~db (Snapshot.encode ~db entries) in
  Alcotest.(check int) "entry count" (List.length entries) (List.length back);
  List.iter2
    (fun e b ->
      Alcotest.(check string) "query" e.Snapshot.query b.Snapshot.query;
      Alcotest.(check bool) "results" true (Intset.equal e.Snapshot.results b.Snapshot.results);
      Alcotest.(check (list int)) "root cut" e.Snapshot.root_cut b.Snapshot.root_cut)
    entries back

let rejects f = try ignore (f ()); false with Invalid_argument _ -> true

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let test_snapshot_rejects_corruption () =
  let db, _ = Lazy.force world in
  let data = Snapshot.encode ~db (sample_entries ()) in
  (* Header: 10-byte magic, 4-byte version, 8-byte checksum; body at 22. *)
  Alcotest.(check bool) "bad magic" true (rejects (fun () -> Snapshot.decode ~db (flip_byte data 0)));
  let bumped = Bytes.of_string data in
  Bytes.set bumped 10 '\x63';
  Alcotest.(check bool) "future version" true
    (rejects (fun () -> Snapshot.decode ~db (Bytes.to_string bumped)));
  Alcotest.(check bool) "checksum catches a body flip" true
    (rejects (fun () -> Snapshot.decode ~db (flip_byte data 25)));
  Alcotest.(check bool) "truncation" true
    (rejects (fun () -> Snapshot.decode ~db (String.sub data 0 (String.length data - 1))));
  Alcotest.(check bool) "trailing garbage" true
    (rejects (fun () -> Snapshot.decode ~db (data ^ "!")))

let test_snapshot_rejects_other_database () =
  let db, _ = Lazy.force world in
  let data = Snapshot.encode ~db (sample_entries ()) in
  (* Same hierarchy, different corpus size: the dimension stamp must trip. *)
  let h = S.generate ~params:S.small_params ~seed:211 () in
  let other =
    DB.of_medline
      (G.generate ~params:{ G.small_params with G.n_citations = 5; seeded_groups = [] } ~seed:3 h)
  in
  Alcotest.(check bool) "dimension mismatch rejected" true
    (rejects (fun () -> Snapshot.decode ~db:other data))

(* --- engine integration ------------------------------------------------ *)

let test_engine_repeat_sessions_hit_cache () =
  let t = engine ~config:prefetch_config () in
  Alcotest.(check bool) "prefetch enabled" true (Engine.prefetch t <> None);
  for _ = 1 to 4 do
    let s = must_session (Engine.search t "cancer") in
    drain_engine s;
    ignore (Engine.close t (Engine.session_id s))
  done;
  let rate = Engine.plan_cache_hit_rate t in
  Alcotest.(check bool) "repeat traffic served from plan cache" true (rate >= 0.5);
  let text = Engine.metrics_text t in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains ~sub text))
    [
      "bionav_prefetch_plan_hits_total";
      "bionav_prefetch_plan_misses_total";
      "bionav_prefetch_queue_depth";
      "bionav_prefetch_speculations_total";
    ]

let test_engine_disabled_prefetch_is_inert () =
  let t = engine () in
  Alcotest.(check bool) "no facade" true (Engine.prefetch t = None);
  let s = must_session (Engine.search t "cancer") in
  ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)));
  Alcotest.(check int) "tick is a no-op" 0 (Engine.prefetch_tick t ~budget:8);
  Alcotest.(check (float 1e-9)) "no hit rate" 0. (Engine.plan_cache_hit_rate t)

(* Satellite: a TTL sweep that races queued speculation must leave no
   stale work behind once the query's last session expires. *)
let test_engine_ttl_sweep_drops_queued_speculation () =
  let clock = Bionav_resilience.Clock.simulated () in
  let config =
    {
      prefetch_config with
      Engine.session_ttl_ms = Some 5.;
      clock;
      prefetch = Some { Prefetch.default_config with budget_per_action = 0 };
    }
  in
  let t = engine ~config () in
  let s = must_session (Engine.search t "cancer") in
  ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)));
  let spec = Prefetch.speculator (Option.get (Engine.prefetch t)) in
  Alcotest.(check bool) "speculation queued, not yet run" true (Speculator.queue_length spec > 0);
  let dropped_before = Speculator.dropped spec in
  Bionav_resilience.Clock.advance clock 10.;
  Alcotest.(check int) "session expired" 1 (Engine.sweep t);
  Alcotest.(check int) "expired session left no queued work" 0 (Speculator.queue_length spec);
  Alcotest.(check bool) "drops counted" true (Speculator.dropped spec > dropped_before);
  Alcotest.(check int) "nothing for the pacer to run" 0 (Engine.prefetch_tick t ~budget:8)

let test_engine_close_refcounts_query_speculation () =
  let config =
    { prefetch_config with prefetch = Some { Prefetch.default_config with budget_per_action = 0 } }
  in
  let t = engine ~config () in
  let s1 = must_session (Engine.search t "cancer") in
  let s2 = must_session (Engine.search t "  CANCER ") in
  ignore (Engine.expand s1 (Nav_tree.root (Engine.session_nav s1)));
  ignore (Engine.expand s2 (Nav_tree.root (Engine.session_nav s2)));
  let spec = Prefetch.speculator (Option.get (Engine.prefetch t)) in
  Alcotest.(check bool) "speculation queued" true (Speculator.queue_length spec > 0);
  Alcotest.(check bool) "closed" true (Engine.close t (Engine.session_id s1));
  Alcotest.(check bool) "live twin keeps the queue" true (Speculator.queue_length spec > 0);
  Alcotest.(check bool) "closed" true (Engine.close t (Engine.session_id s2));
  Alcotest.(check int) "last close drops the queue" 0 (Speculator.queue_length spec)

let test_engine_warm_snapshot_roundtrip () =
  let t = engine ~config:prefetch_config () in
  let entries = Engine.warm t [ "cancer"; "  CANCER " ] in
  Alcotest.(check int) "normalized + deduplicated" 1 (List.length entries);
  let e = List.hd entries in
  Alcotest.(check string) "normalized query" "cancer" e.Snapshot.query;
  Alcotest.(check bool) "root cut captured" true (e.Snapshot.root_cut <> []);
  let path = Filename.temp_file "bionav_snapshot" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.save_snapshot t entries path;
      let t2 = engine ~config:prefetch_config ~snapshot:path () in
      let s = must_session (Engine.search t2 "cancer") in
      Alcotest.(check (float 1e-9)) "tree served from warmed cache" 1.
        (Engine.cache_hit_rate t2);
      let plans = Prefetch.plans (Option.get (Engine.prefetch t2)) in
      let hits_before = Plan_cache.hits plans in
      let root = Nav_tree.root (Engine.session_nav s) in
      let revealed = Engine.expand s root in
      Alcotest.(check int) "first EXPAND served from warmed plan" (hits_before + 1)
        (Plan_cache.hits plans);
      (* The warmed cut is byte-identical to a cold computation. *)
      let cold = Navigation.start (Navigation.bionav ()) (Engine.session_nav s) in
      Alcotest.(check (list int)) "warmed root cut = cold root cut"
        (Navigation.expand cold root) revealed)

(* --- web surface ------------------------------------------------------- *)

let test_web_prefetch_routes () =
  let database, eutils = Lazy.force world in
  let app = App.create ~config:prefetch_config ~database ~eutils () in
  let handle = App.handle app in
  let metrics = handle ~path:"/metrics" ~query:[] in
  Alcotest.(check int) "metrics 200" 200 metrics.Http.status;
  Alcotest.(check bool) "prefetch counters exported" true
    (contains ~sub:"bionav_prefetch_plan_hits_total" metrics.Http.body);
  let status = handle ~path:"/prefetch" ~query:[] in
  Alcotest.(check int) "prefetch 200" 200 status.Http.status;
  Alcotest.(check bool) "enabled report" true (contains ~sub:"prefetch: enabled" status.Http.body);
  Alcotest.(check bool) "hit rate reported" true (contains ~sub:"plan_hit_rate" status.Http.body);
  let plain = App.create ~database ~eutils () in
  let status = (App.handle plain) ~path:"/prefetch" ~query:[] in
  Alcotest.(check bool) "disabled report" true
    (contains ~sub:"prefetch: disabled" status.Http.body)

let () =
  Alcotest.run "prefetch"
    [
      ( "plan cache",
        [
          Alcotest.test_case "roundtrip + keying" `Quick test_plan_cache_roundtrip;
          Alcotest.test_case "empty cut ignored" `Quick test_plan_cache_empty_cut_ignored;
          Alcotest.test_case "mem is pure" `Quick test_plan_cache_mem_is_pure;
          Alcotest.test_case "capacity + clear" `Quick test_plan_cache_capacity_and_clear;
          Alcotest.test_case "fingerprint keying" `Quick test_plan_cache_fingerprint_keying;
          Alcotest.test_case "cached replay byte-identical" `Quick
            test_cached_replay_is_byte_identical;
        ] );
      ( "speculator",
        [
          Alcotest.test_case "budget ticks" `Quick test_speculator_budget_ticks;
          Alcotest.test_case "deterministic" `Quick test_speculator_is_deterministic;
          Alcotest.test_case "matches foreground" `Quick test_speculated_plan_matches_foreground;
          Alcotest.test_case "overflow drops new job" `Quick
            test_speculator_overflow_drops_new_job;
          Alcotest.test_case "drop_query" `Quick test_speculator_drop_query;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick test_snapshot_rejects_corruption;
          Alcotest.test_case "rejects other database" `Quick test_snapshot_rejects_other_database;
        ] );
      ( "engine",
        [
          Alcotest.test_case "repeat sessions hit cache" `Quick
            test_engine_repeat_sessions_hit_cache;
          Alcotest.test_case "disabled prefetch inert" `Quick
            test_engine_disabled_prefetch_is_inert;
          Alcotest.test_case "TTL sweep drops speculation" `Quick
            test_engine_ttl_sweep_drops_queued_speculation;
          Alcotest.test_case "close refcounts speculation" `Quick
            test_engine_close_refcounts_query_speculation;
          Alcotest.test_case "warm + snapshot roundtrip" `Quick
            test_engine_warm_snapshot_roundtrip;
        ] );
      ( "web",
        [ Alcotest.test_case "/prefetch + /metrics" `Quick test_web_prefetch_routes ] );
    ]
