open Bionav_util

let test_probs_sum_to_one () =
  let z = Zipf.create ~exponent:1.1 100 in
  let total = ref 0. in
  for r = 0 to 99 do
    total := !total +. Zipf.prob z r
  done;
  Alcotest.(check bool) "sums to 1" true (Float.abs (!total -. 1.) < 1e-9)

let test_probs_monotone () =
  let z = Zipf.create 50 in
  for r = 1 to 49 do
    Alcotest.(check bool) "non-increasing" true (Zipf.prob z (r - 1) >= Zipf.prob z r)
  done

let test_rank_zero_most_likely () =
  let z = Zipf.create ~exponent:1.0 10 in
  (* P(0) = 1/H_10. *)
  let expected = 1. /. Stats.harmonic 10 in
  Alcotest.(check bool) "H-based mass" true (Float.abs (Zipf.prob z 0 -. expected) < 1e-9)

let test_draw_in_range () =
  let z = Zipf.create 20 in
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let r = Zipf.draw z rng in
    Alcotest.(check bool) "in range" true (r >= 0 && r < 20)
  done

let test_draw_distribution () =
  let z = Zipf.create ~exponent:1.0 10 in
  let rng = Rng.create 4 in
  let counts = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.draw z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let expected = Zipf.expected_counts z n in
  for r = 0 to 9 do
    let err = Float.abs (float_of_int counts.(r) -. expected.(r)) /. expected.(r) in
    Alcotest.(check bool) (Printf.sprintf "rank %d within 10%%" r) true (err < 0.10)
  done

let test_exponent_zero_uniform () =
  let z = Zipf.create ~exponent:0.0 4 in
  for r = 0 to 3 do
    Alcotest.(check bool) "uniform" true (Float.abs (Zipf.prob z r -. 0.25) < 1e-9)
  done

let test_singleton () =
  let z = Zipf.create 1 in
  let rng = Rng.create 5 in
  Alcotest.(check int) "only rank" 0 (Zipf.draw z rng);
  Alcotest.(check bool) "prob 1" true (Float.abs (Zipf.prob z 0 -. 1.) < 1e-9)

let test_accessors () =
  let z = Zipf.create ~exponent:1.5 7 in
  Alcotest.(check int) "size" 7 (Zipf.size z);
  Alcotest.(check (float 1e-9)) "exponent" 1.5 (Zipf.exponent z)

let qcheck_draw_in_range =
  QCheck.Test.make ~name:"draw always within [0,n)" ~count:300
    QCheck.(pair (int_range 1 200) small_int)
    (fun (n, seed) ->
      let z = Zipf.create n in
      let rng = Rng.create seed in
      let r = Zipf.draw z rng in
      r >= 0 && r < n)

let () =
  Alcotest.run "zipf"
    [
      ( "unit",
        [
          Alcotest.test_case "probs sum to one" `Quick test_probs_sum_to_one;
          Alcotest.test_case "probs monotone" `Quick test_probs_monotone;
          Alcotest.test_case "rank zero mass" `Quick test_rank_zero_most_likely;
          Alcotest.test_case "draw in range" `Quick test_draw_in_range;
          Alcotest.test_case "draw distribution" `Quick test_draw_distribution;
          Alcotest.test_case "exponent zero uniform" `Quick test_exponent_zero_uniform;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "accessors" `Quick test_accessors;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_draw_in_range ]);
    ]
