module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic

let small = S.small_params

let test_deterministic () =
  let a = S.generate ~params:small ~seed:3 () in
  let b = S.generate ~params:small ~seed:3 () in
  Alcotest.(check int) "same size" (H.size a) (H.size b);
  for i = 0 to H.size a - 1 do
    if H.label a i <> H.label b i || H.parent a i <> H.parent b i then
      Alcotest.fail "generation not deterministic"
  done

let test_seed_changes_output () =
  let a = S.generate ~params:small ~seed:3 () in
  let b = S.generate ~params:small ~seed:4 () in
  let differs =
    H.size a <> H.size b
    ||
    let d = ref false in
    for i = 0 to H.size a - 1 do
      if H.label a i <> H.label b i then d := true
    done;
    !d
  in
  Alcotest.(check bool) "different seeds differ" true differs

let test_size_near_target () =
  let h = S.generate ~params:small ~seed:1 () in
  let n = H.size h in
  Alcotest.(check bool) "within 25% of target" true
    (float_of_int n > 0.75 *. float_of_int small.S.target_size
    && float_of_int n < 1.25 *. float_of_int small.S.target_size)

let test_top_fanout () =
  let h = S.generate ~params:small ~seed:1 () in
  Alcotest.(check int) "root children" small.S.top_fanout (List.length (H.children h 0))

let test_depth_bounded () =
  let h = S.generate ~params:small ~seed:2 () in
  Alcotest.(check bool) "height within max_depth" true (H.height h <= small.S.max_depth);
  Alcotest.(check bool) "reasonably deep" true (H.height h >= small.S.max_depth - 2)

let test_root_label () =
  let h = S.generate ~params:small ~seed:1 () in
  Alcotest.(check string) "MeSH root" "MeSH" (H.label h 0)

let test_category_labels () =
  let h = S.generate ~params:small ~seed:1 () in
  let first = List.hd (H.children h 0) in
  Alcotest.(check string) "first category" "Anatomy" (H.label h first)

let test_labels_unique () =
  let h = S.generate ~params:small ~seed:6 () in
  let seen = Hashtbl.create 512 in
  for i = 0 to H.size h - 1 do
    let l = H.label h i in
    if Hashtbl.mem seen l then Alcotest.fail (Printf.sprintf "duplicate label %S" l);
    Hashtbl.add seen l ()
  done

let test_level_counts_budget () =
  let counts = S.level_counts small in
  Alcotest.(check int) "level 1 pinned" small.S.top_fanout counts.(0);
  let total = Array.fold_left ( + ) 1 counts in
  Alcotest.(check bool) "near target" true
    (abs (total - small.S.target_size) < small.S.target_size / 4);
  Alcotest.(check bool) "levels bounded" true (Array.length counts <= small.S.max_depth)

let test_default_profile_shape () =
  let counts = S.level_counts S.default_params in
  Alcotest.(check int) "112 top trees" 112 counts.(0);
  (* The profile peaks in the middle depths, as MeSH does. *)
  let peak = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!peak) then peak := i) counts;
  Alcotest.(check bool) "peak at depth 4-7" true (!peak >= 3 && !peak <= 6)

let test_bushiness_varies () =
  let h = S.generate ~params:small ~seed:7 () in
  (* Zipf parent skew should produce at least one node with many children
     and many leaves. *)
  let max_children = ref 0 and leaves = ref 0 in
  for i = 0 to H.size h - 1 do
    max_children := max !max_children (List.length (H.children h i));
    if H.is_leaf h i then incr leaves
  done;
  Alcotest.(check bool) "bushy node exists" true (!max_children >= 8);
  Alcotest.(check bool) "most nodes are leaves" true (!leaves * 2 > H.size h)

let () =
  Alcotest.run "synthetic"
    [
      ( "unit",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seed changes output" `Quick test_seed_changes_output;
          Alcotest.test_case "size near target" `Quick test_size_near_target;
          Alcotest.test_case "top fanout" `Quick test_top_fanout;
          Alcotest.test_case "depth bounded" `Quick test_depth_bounded;
          Alcotest.test_case "root label" `Quick test_root_label;
          Alcotest.test_case "category labels" `Quick test_category_labels;
          Alcotest.test_case "labels unique" `Quick test_labels_unique;
          Alcotest.test_case "level counts budget" `Quick test_level_counts_budget;
          Alcotest.test_case "default profile shape" `Quick test_default_profile_shape;
          Alcotest.test_case "bushiness varies" `Quick test_bushiness_varies;
        ] );
    ]
