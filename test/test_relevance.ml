open Bionav_util
open Bionav_core

(* Nav tree: root -> {a (selective), b (unselective), c (middling)}. *)
let nav () =
  let h =
    Bionav_mesh.Hierarchy.of_parents
      ~labels:(fun i -> [| "root"; "a"; "b"; "c" |].(i))
      [| -1; 0; 0; 0 |]
  in
  let attachments =
    [
      (1, Docset.of_list (List.init 20 Fun.id));
      (2, Docset.of_list (List.init 20 (fun i -> 100 + i)));
      (3, Docset.of_list (List.init 10 (fun i -> 200 + i)));
    ]
  in
  let totals = function 1 -> 25 | 2 -> 20_000 | 3 -> 50 | _ -> 0 in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:totals

let test_component_weight () =
  let active = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut active ~root:0 ~cut_children:[ 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "a" 0.8 (Relevance.component_weight active 1);
  Alcotest.(check (float 1e-9)) "b" 0.001 (Relevance.component_weight active 2);
  Alcotest.(check (float 1e-9)) "c" 0.2 (Relevance.component_weight active 3)

let test_weight_sums_over_component () =
  let active = Active_tree.create (nav ()) in
  (* Root component holds all four nodes. *)
  let expected = 0.8 +. 0.001 +. 0.2 in
  Alcotest.(check (float 1e-9)) "summed" expected (Relevance.component_weight active 0)

let test_rank_visible () =
  let active = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut active ~root:0 ~cut_children:[ 1; 2; 3 ]);
  Alcotest.(check (list int)) "selectivity order" [ 1; 3; 2 ]
    (Relevance.rank_visible active [ 1; 2; 3 ])

let test_ranked_children () =
  let active = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut active ~root:0 ~cut_children:[ 2; 3 ]);
  (* Visible children of the root are 2 and 3; c outranks b. *)
  Alcotest.(check (list int)) "ranked" [ 3; 2 ] (Relevance.ranked_children active 0)

let test_render_ranked_order () =
  let active = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut active ~root:0 ~cut_children:[ 1; 2; 3 ]);
  let out = Relevance.render_ranked active in
  let index_of sub =
    let rec go i =
      if i + String.length sub > String.length out then -1
      else if String.sub out i (String.length sub) = sub then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "a before c before b" true
    (index_of "a (" < index_of "c (" && index_of "c (" < index_of "b (")

let test_rejects_invisible () =
  let active = Active_tree.create (nav ()) in
  Alcotest.(check bool) "invisible node" true
    (try
       ignore (Relevance.component_weight active 2);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "relevance"
    [
      ( "unit",
        [
          Alcotest.test_case "component weight" `Quick test_component_weight;
          Alcotest.test_case "weight sums" `Quick test_weight_sums_over_component;
          Alcotest.test_case "rank visible" `Quick test_rank_visible;
          Alcotest.test_case "ranked children" `Quick test_ranked_children;
          Alcotest.test_case "render order" `Quick test_render_ranked_order;
          Alcotest.test_case "rejects invisible" `Quick test_rejects_invisible;
        ] );
    ]
