open Bionav_util

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check bool) "split diverges" true (xa <> xb)

let test_copy_preserves () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 4 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 4)
  done

let test_int_covers_range () =
  let rng = Rng.create 8 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values occur" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Rng.create 10 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 11 in
  Alcotest.(check bool) "p=0 false" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 true" true (Rng.bernoulli rng 1.)

let test_bernoulli_rate () =
  let rng = Rng.create 12 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_shuffle_is_permutation () =
  let rng = Rng.create 13 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_sample_distinct () =
  let rng = Rng.create 14 in
  let arr = Array.init 30 Fun.id in
  let s = Rng.sample rng 10 arr in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" true (sorted.(i - 1) <> sorted.(i))
  done

let test_sample_oversized () =
  let rng = Rng.create 15 in
  let s = Rng.sample rng 100 [| 1; 2; 3 |] in
  Alcotest.(check int) "clamped to population" 3 (Array.length s)

let test_choice_singleton () =
  let rng = Rng.create 16 in
  Alcotest.(check int) "only element" 9 (Rng.choice rng [| 9 |]);
  Alcotest.(check int) "only element (list)" 9 (Rng.choice_list rng [ 9 ])

let test_choice_list_empty () =
  let rng = Rng.create 17 in
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choice_list: empty list") (fun () ->
      ignore (Rng.choice_list rng []))

let test_geometric_mean () =
  let rng = Rng.create 18 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng 0.25
  done;
  (* Mean of geometric (failures before success) is (1-p)/p = 3. *)
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.) < 0.25)

let test_gaussian_moments () =
  let rng = Rng.create 19 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mean:5. ~stddev:2.) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (sd -. 2.) < 0.1)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"int_in stays within bounds" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create seed in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "copy preserves" `Quick test_copy_preserves;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "sample oversized" `Quick test_sample_oversized;
          Alcotest.test_case "choice singleton" `Quick test_choice_singleton;
          Alcotest.test_case "choice_list empty" `Quick test_choice_list_empty;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_int_in_range ]);
    ]
