open Bionav_util
open Bionav_core

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

(* A three-branch tree with distinct result lists so every node weighs 1-3. *)
let sample () =
  let n = 13 in
  let parent = [| -1; 0; 0; 0; 1; 1; 2; 2; 3; 4; 4; 6; 8 |] in
  let results =
    Array.init n (fun i -> List.init (1 + (i mod 3)) (fun j -> (i * 10) + j))
  in
  mk parent results (Array.make n 100)

let check_connected tree (res : Partition.result) =
  (* Every node's path to its partition root stays inside the partition. *)
  Array.iteri
    (fun v root ->
      let rec climb x =
        if x = root then true
        else if x = -1 then false
        else if res.Partition.assignment.(x) <> root then false
        else climb (Comp_tree.parent tree x)
      in
      Alcotest.(check bool) (Printf.sprintf "node %d connected" v) true (climb v))
    res.Partition.assignment

let test_assignment_total () =
  let tree = sample () in
  let res = Partition.run tree ~threshold:5. in
  Alcotest.(check int) "every node assigned" (Comp_tree.size tree)
    (Array.length res.Partition.assignment);
  Array.iteri
    (fun v root ->
      Alcotest.(check bool) (Printf.sprintf "%d has valid root" v) true
        (root >= 0 && root < Comp_tree.size tree);
      Alcotest.(check int) "root self-assigned" root res.Partition.assignment.(root))
    res.Partition.assignment

let test_roots_sorted_and_include_zero () =
  let tree = sample () in
  let res = Partition.run tree ~threshold:5. in
  (match res.Partition.roots with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "root partition must come first");
  Alcotest.(check (list int)) "ascending" (List.sort Int.compare res.Partition.roots)
    res.Partition.roots

let test_partitions_connected () =
  let tree = sample () in
  List.iter
    (fun threshold -> check_connected tree (Partition.run tree ~threshold))
    [ 2.; 4.; 8.; 100. ]

let test_weights_respected () =
  let tree = sample () in
  let threshold = 6. in
  let res = Partition.run tree ~threshold in
  (* Each partition that is not a single overweight node must weigh at most
     threshold + heaviest child (the algorithm sheds until <= threshold, so
     remaining cluster weight <= threshold unless indivisible). *)
  let weight_of_partition root =
    Array.to_list res.Partition.assignment
    |> List.mapi (fun v r -> if r = root then Partition.node_weight tree v else 0.)
    |> List.fold_left ( +. ) 0.
  in
  List.iter
    (fun root ->
      let w = weight_of_partition root in
      let own = Partition.node_weight tree root in
      Alcotest.(check bool)
        (Printf.sprintf "partition %d weight %.0f" root w)
        true
        (w <= threshold || w = own))
    res.Partition.roots

let test_huge_threshold_single_partition () =
  let tree = sample () in
  let res = Partition.run tree ~threshold:1e9 in
  Alcotest.(check (list int)) "one partition" [ 0 ] res.Partition.roots

let test_tiny_threshold_many_partitions () =
  let tree = sample () in
  let res = Partition.run tree ~threshold:0.5 in
  Alcotest.(check bool) "many partitions" true (List.length res.Partition.roots > 5);
  check_connected tree res

let test_run_k_bounds () =
  let tree = sample () in
  List.iter
    (fun k ->
      let res = Partition.run_k tree ~k in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d respected" k)
        true
        (List.length res.Partition.roots <= k);
      check_connected tree res)
    [ 1; 2; 3; 5; 10; 50 ]

let test_run_k_uses_budget () =
  (* With k larger than trivially needed, the partitioning should actually
     split (more than one partition) for this 13-node tree. *)
  let tree = sample () in
  let res = Partition.run_k tree ~k:10 in
  Alcotest.(check bool) "splits" true (List.length res.Partition.roots > 1)

let test_singleton_tree () =
  let tree = mk [| -1 |] [| [ 1 ] |] [| 5 |] in
  let res = Partition.run_k tree ~k:4 in
  Alcotest.(check (list int)) "single node" [ 0 ] res.Partition.roots

let test_rejects_bad_args () =
  let tree = sample () in
  Alcotest.(check bool) "threshold <= 0" true
    (try
       ignore (Partition.run tree ~threshold:0.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "k < 1" true
    (try
       ignore (Partition.run_k tree ~k:0);
       false
     with Invalid_argument _ -> true)

let test_weight_functions () =
  let tree = sample () in
  Alcotest.(check (float 1e-9)) "node weight = |L|" 1. (Partition.node_weight tree 0);
  let expected =
    List.fold_left
      (fun acc v -> acc +. Partition.node_weight tree v)
      0.
      (List.init (Comp_tree.size tree) Fun.id)
  in
  Alcotest.(check (float 1e-9)) "total" expected (Partition.total_weight tree)

(* Random trees: structural invariants hold for arbitrary shapes. *)
let gen_tree =
  QCheck.make
    ~print:(fun (parents, _) ->
      String.concat ";" (Array.to_list (Array.map string_of_int parents)))
    QCheck.Gen.(
      int_range 2 40 >>= fun n ->
      let rec build i acc =
        if i >= n then return (Array.of_list (List.rev acc))
        else int_range 0 (i - 1) >>= fun p -> build (i + 1) (p :: acc)
      in
      build 1 [ -1 ] >>= fun parents ->
      int_range 1 1000 >|= fun seed -> (parents, seed))

let tree_of (parents, seed) =
  let rng = Rng.create seed in
  let n = Array.length parents in
  let results =
    Array.init n (fun i ->
        Docset.of_list (List.init (1 + Rng.int rng 5) (fun j -> (i * 10) + j)))
  in
  Comp_tree.make ~parent:parents ~results ~totals:(Array.make n 1000) ()

let qcheck_partitions_cover =
  QCheck.Test.make ~name:"partitions cover all nodes, connected" ~count:200 gen_tree
    (fun input ->
      let tree = tree_of input in
      let res = Partition.run_k tree ~k:5 in
      List.length res.Partition.roots <= 5
      && res.Partition.assignment.(0) = 0
      && Array.for_all
           (fun root -> List.mem root res.Partition.roots)
           res.Partition.assignment
      &&
      (* connectivity *)
      let ok = ref true in
      Array.iteri
        (fun v root ->
          let rec climb x =
            if x = root then true
            else if x = -1 then false
            else res.Partition.assignment.(x) = root && climb (Comp_tree.parent tree x)
          in
          if not (climb v) then ok := false)
        res.Partition.assignment;
      !ok)

let () =
  Alcotest.run "partition"
    [
      ( "unit",
        [
          Alcotest.test_case "assignment total" `Quick test_assignment_total;
          Alcotest.test_case "roots sorted" `Quick test_roots_sorted_and_include_zero;
          Alcotest.test_case "connected" `Quick test_partitions_connected;
          Alcotest.test_case "weights respected" `Quick test_weights_respected;
          Alcotest.test_case "huge threshold" `Quick test_huge_threshold_single_partition;
          Alcotest.test_case "tiny threshold" `Quick test_tiny_threshold_many_partitions;
          Alcotest.test_case "run_k bounds" `Quick test_run_k_bounds;
          Alcotest.test_case "run_k splits" `Quick test_run_k_uses_budget;
          Alcotest.test_case "singleton" `Quick test_singleton_tree;
          Alcotest.test_case "rejects bad args" `Quick test_rejects_bad_args;
          Alcotest.test_case "weight functions" `Quick test_weight_functions;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_partitions_cover ]);
    ]
