open Bionav_util
open Bionav_core

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

let sample () =
  (* 0 - {1 - {3, 4}, 2 - {5}} with overlapping results. *)
  mk [| -1; 0; 0; 1; 1; 2 |]
    [| [ 0 ]; [ 1; 2 ]; [ 2; 3 ]; [ 1; 4 ]; [ 5 ]; [ 3; 6 ] |]
    [| 10; 10; 10; 10; 10; 10 |]

let reduced_of k =
  let tree = sample () in
  let part = Partition.run_k tree ~k in
  (tree, part, Reduced_tree.build tree part)

let test_members_partition_nodes () =
  let tree, part, red = reduced_of 3 in
  let all =
    List.concat (List.init (Reduced_tree.size red) (Reduced_tree.members red))
  in
  Alcotest.(check (list int)) "members cover tree"
    (List.init (Comp_tree.size tree) Fun.id)
    (List.sort Int.compare all);
  Alcotest.(check int) "one supernode per partition root"
    (List.length part.Partition.roots) (Reduced_tree.size red)

let test_supernode_results_are_unions () =
  let tree, _, red = reduced_of 3 in
  let rt = Reduced_tree.tree red in
  for s = 0 to Reduced_tree.size red - 1 do
    let expected =
      Docset.union_many (List.map (Comp_tree.results tree) (Reduced_tree.members red s))
    in
    Alcotest.(check bool) "union" true (Docset.equal expected (Comp_tree.results rt s))
  done

let test_supernode_multiplicity () =
  let _, _, red = reduced_of 3 in
  let rt = Reduced_tree.tree red in
  for s = 0 to Reduced_tree.size red - 1 do
    Alcotest.(check int) "multiplicity = member count"
      (List.length (Reduced_tree.members red s))
      (Comp_tree.multiplicity rt s);
    Alcotest.(check int) "sub_weights length"
      (List.length (Reduced_tree.members red s))
      (Array.length (Comp_tree.sub_weights rt s))
  done

let test_supernode_totals_sum () =
  let tree, _, red = reduced_of 3 in
  let rt = Reduced_tree.tree red in
  for s = 0 to Reduced_tree.size red - 1 do
    let sum =
      List.fold_left (fun acc v -> acc + Comp_tree.total tree v) 0 (Reduced_tree.members red s)
    in
    Alcotest.(check int) "summed LT" sum (Comp_tree.total rt s)
  done

let test_parent_structure_respected () =
  let tree, part, red = reduced_of 3 in
  let rt = Reduced_tree.tree red in
  for s = 1 to Reduced_tree.size red - 1 do
    let r = Reduced_tree.partition_root red s in
    let parent_partition = part.Partition.assignment.(Comp_tree.parent tree r) in
    Alcotest.(check int) "reduced parent"
      parent_partition
      (Reduced_tree.partition_root red (Comp_tree.parent rt s))
  done

let test_tags_are_partition_roots () =
  let _, _, red = reduced_of 3 in
  let rt = Reduced_tree.tree red in
  for s = 0 to Reduced_tree.size red - 1 do
    Alcotest.(check int) "tag" (Reduced_tree.partition_root red s) (Comp_tree.tag rt s)
  done

let test_map_cut_children () =
  let tree, _, red = reduced_of 3 in
  if Reduced_tree.size red >= 2 then begin
    let cut = [ 1 ] in
    let mapped = Reduced_tree.map_cut_children red cut in
    Alcotest.(check int) "maps to partition root" (Reduced_tree.partition_root red 1)
      (List.hd mapped);
    (* Mapped node is a non-root node of the original tree. *)
    List.iter
      (fun v -> Alcotest.(check bool) "non-root" true (v > 0 && v < Comp_tree.size tree))
      mapped
  end

let test_map_cut_rejects_root_and_bogus () =
  let _, _, red = reduced_of 3 in
  Alcotest.(check bool) "root rejected" true
    (try
       ignore (Reduced_tree.map_cut_children red [ 0 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Reduced_tree.map_cut_children red [ 99 ]);
       false
     with Invalid_argument _ -> true)

let test_single_partition_reduces_to_one () =
  let tree = sample () in
  let part = Partition.run tree ~threshold:1e9 in
  let red = Reduced_tree.build tree part in
  Alcotest.(check int) "one supernode" 1 (Reduced_tree.size red);
  let rt = Reduced_tree.tree red in
  Alcotest.(check int) "all concepts aggregated" (Comp_tree.size tree)
    (Comp_tree.multiplicity rt 0)

let test_build_rejects_mismatched_partition () =
  let tree = sample () in
  let other = mk [| -1; 0 |] [| [ 1 ]; [ 2 ] |] [| 3; 3 |] in
  let part = Partition.run other ~threshold:1. in
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Reduced_tree.build tree part);
       false
     with Invalid_argument _ -> true)

(* The mapped image of any valid reduced cut is a valid original cut. *)
let qcheck_mapped_cuts_valid =
  let gen =
    QCheck.make
      ~print:(fun (n, seed, k) -> Printf.sprintf "n=%d seed=%d k=%d" n seed k)
      QCheck.Gen.(
        triple (int_range 3 30) (int_range 0 1000) (int_range 2 6))
  in
  QCheck.Test.make ~name:"mapped reduced cuts are valid original antichains" ~count:200 gen
    (fun (n, seed, k) ->
      let rng = Rng.create seed in
      let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
      let results = Array.init n (fun i -> Docset.of_list [ i; i + 1 ]) in
      let tree = Comp_tree.make ~parent ~results ~totals:(Array.make n 100) () in
      let part = Partition.run_k tree ~k in
      let red = Reduced_tree.build tree part in
      let rt = Reduced_tree.tree red in
      if Comp_tree.size rt < 2 then true
      else begin
        (* Cut all reduced root children (always a valid reduced cut). *)
        let cut = Comp_tree.children rt 0 in
        let mapped = Reduced_tree.map_cut_children red cut in
        let rec ancestor a b =
          let p = Comp_tree.parent tree b in
          if p = -1 then false else p = a || ancestor a p
        in
        List.for_all (fun v -> v > 0) mapped
        && List.for_all
             (fun a -> List.for_all (fun b -> a = b || not (ancestor a b)) mapped)
             mapped
      end)

let () =
  Alcotest.run "reduced_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "members partition nodes" `Quick test_members_partition_nodes;
          Alcotest.test_case "results are unions" `Quick test_supernode_results_are_unions;
          Alcotest.test_case "multiplicity" `Quick test_supernode_multiplicity;
          Alcotest.test_case "totals sum" `Quick test_supernode_totals_sum;
          Alcotest.test_case "parent structure" `Quick test_parent_structure_respected;
          Alcotest.test_case "tags" `Quick test_tags_are_partition_roots;
          Alcotest.test_case "map cut" `Quick test_map_cut_children;
          Alcotest.test_case "map cut rejects" `Quick test_map_cut_rejects_root_and_bogus;
          Alcotest.test_case "single partition" `Quick test_single_partition_reduces_to_one;
          Alcotest.test_case "rejects mismatch" `Quick test_build_rejects_mismatched_partition;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_mapped_cuts_valid ]);
    ]
