open Bionav_util
open Bionav_core
module A = Bionav_adaptive.Adaptive
module Ev = Bionav_adaptive.Evidence
module Engine = Bionav_engine.Engine

(* --- fixtures ----------------------------------------------------------- *)

(* A random component tree with hierarchy concept ids attached, so learned
   evidence has something to join against. *)
let random_tree seed n =
  let rng = Rng.create seed in
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  let next = ref 0 in
  let results =
    Array.init n (fun _ ->
        let k = 1 + Rng.int rng 8 in
        let l = List.init k (fun j -> !next + j) in
        next := !next + (k / 2) + 1;
        Docset.of_list l)
  in
  let totals = Array.init n (fun i -> Docset.cardinal results.(i) * (2 + Rng.int rng 30)) in
  Comp_tree.make ~parent ~results ~totals ~concepts:(Array.init n (fun i -> 100 + i)) ()

let nav () =
  let parent = [| -1; 0; 1; 1; 0; 4 |] in
  let h = Bionav_mesh.Hierarchy.of_parents parent in
  let attachments =
    List.init 5 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 15 (fun j -> (node * 20) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 400)

let fixed_clock ms () = ms

(* Identical plans + identical expected costs on one tree. *)
let equivalent_on_tree m1 m2 t =
  let c1 = Opt_edgecut.expected_cost ~model:m1 t
  and c2 = Opt_edgecut.expected_cost ~model:m2 t in
  let same_cost = Float.abs (c1 -. c2) <= 1e-9 in
  let same_cut =
    Comp_tree.size t < 2
    || (Opt_edgecut.solve ~model:m1 t).Opt_edgecut.cut_children
       = (Opt_edgecut.solve ~model:m2 t).Opt_edgecut.cut_children
  in
  let same_heuristic =
    Comp_tree.size t < 2
    || (Heuristic.best_cut ~model:m1 t).Heuristic.cut_children
       = (Heuristic.best_cut ~model:m2 t).Heuristic.cut_children
  in
  same_cost && same_cut && same_heuristic

(* --- zero evidence == static (the qcheck satellite) ---------------------- *)

let qcheck_zero_evidence_is_static =
  QCheck.Test.make ~name:"zero-evidence learned model behaves exactly like static" ~count:50
    QCheck.(pair (int_range 2 Opt_edgecut.max_size) (int_range 0 10_000))
    (fun (n, seed) ->
      let learned = A.model (A.create ~now_ms:(fixed_clock 0.) ()) in
      equivalent_on_tree (Probability.static ()) learned (random_tree seed n))

let qcheck_decayed_is_static =
  QCheck.Test.make ~name:"fully decayed evidence behaves exactly like static" ~count:25
    QCheck.(pair (int_range 2 Opt_edgecut.max_size) (int_range 0 10_000))
    (fun (n, seed) ->
      let now = ref 0. in
      let ad =
        A.create
          ~config:{ A.default_config with A.half_life_ms = Some 10. }
          ~now_ms:(fun () -> !now)
          ()
      in
      (* Pile on evidence for the tree's concepts, then let it all decay. *)
      for c = 100 to 100 + n - 1 do
        A.observe_expand ad ~concept:c;
        A.observe_show ad ~concept:c;
        A.observe_ignore ad ~concept:c
      done;
      now := 1e6;
      (* 100k half-lives *)
      A.refresh ad;
      Ev.concept_count (A.evidence ad) ~now_ms:!now = 0
      && equivalent_on_tree (Probability.static ()) (A.model ad) (random_tree seed n))

let test_zero_evidence_simulate_traces () =
  let ad = A.create ~now_ms:(fixed_clock 0.) () in
  for target = 0 to 5 do
    let s1 = Navigation.start (Navigation.bionav ()) (nav ()) in
    let s2 = Navigation.start (Navigation.bionav ~model:(A.model ad) ()) (nav ()) in
    let o1 = Simulate.to_target s1 ~target and o2 = Simulate.to_target s2 ~target in
    Alcotest.(check int)
      (Printf.sprintf "target %d: expands" target)
      o1.Simulate.expands o2.Simulate.expands;
    Alcotest.(check int)
      (Printf.sprintf "target %d: revealed" target)
      o1.Simulate.revealed o2.Simulate.revealed;
    Alcotest.(check int)
      (Printf.sprintf "target %d: cost" target)
      o1.Simulate.navigation_cost o2.Simulate.navigation_cost
  done

let test_evidence_changes_model () =
  (* The equivalence is not vacuous: real evidence moves probabilities. *)
  let ad = A.create ~now_ms:(fixed_clock 0.) () in
  let t = random_tree 7 12 in
  for _ = 1 to 30 do
    A.observe_expand ad ~concept:105;
    A.observe_ignore ad ~concept:108
  done;
  A.refresh ad;
  let norm_static = Probability.default_model.Probability.normalizer t in
  let norm_learned = (A.model ad).Probability.normalizer t in
  Alcotest.(check bool) "normalizer moved" true
    (Float.abs (norm_static -. norm_learned) > 1e-6)

(* --- learn semantics ----------------------------------------------------- *)

let test_learn_engaged_vs_ignored () =
  let ad = A.create ~now_ms:(fixed_clock 0.) () in
  A.learn ad
    [
      Session_log.Expanded { concept = 1; revealed = [ 2; 3; 4 ] };
      Session_log.Shown { concept = 2; n_listed = 12 };
      Session_log.Backtracked;
      Session_log.Expanded { concept = 3; revealed = [] };
    ];
  let counts c = Ev.counts (A.evidence ad) ~now_ms:0. ~concept:c in
  Alcotest.(check (float 0.)) "1 expanded" 1. (counts 1).Ev.expands;
  Alcotest.(check (float 0.)) "2 shown" 1. (counts 2).Ev.shows;
  Alcotest.(check (float 0.)) "2 not ignored (engaged later)" 0. (counts 2).Ev.ignores;
  Alcotest.(check (float 0.)) "3 not ignored (expanded later)" 0. (counts 3).Ev.ignores;
  Alcotest.(check (float 0.)) "3 expanded" 1. (counts 3).Ev.expands;
  Alcotest.(check (float 0.)) "4 ignored" 1. (counts 4).Ev.ignores;
  Alcotest.(check (float 0.)) "4 never engaged" 0.
    ((counts 4).Ev.expands +. (counts 4).Ev.shows)

let test_learn_bumps_fingerprint () =
  let ad = A.create ~now_ms:(fixed_clock 0.) () in
  let fp0 = (A.model ad).Probability.fingerprint in
  Alcotest.(check bool) "learned prefix" true
    (String.length fp0 >= 8 && String.sub fp0 0 8 = "learned/");
  A.learn ad [ Session_log.Expanded { concept = 1; revealed = [] } ];
  let fp1 = (A.model ad).Probability.fingerprint in
  Alcotest.(check bool) "epoch bumped" true (fp0 <> fp1);
  Alcotest.(check int) "observations counted" 1 (A.observations ad)

let test_observe_refresh_cadence () =
  let cfg = { A.default_config with A.refresh_every = 4 } in
  let ad = A.create ~config:cfg ~now_ms:(fixed_clock 0.) () in
  let fp0 = (A.model ad).Probability.fingerprint in
  A.observe_expand ad ~concept:1;
  A.observe_expand ad ~concept:1;
  A.observe_expand ad ~concept:1;
  Alcotest.(check string) "below cadence: model untouched" fp0
    (A.model ad).Probability.fingerprint;
  A.observe_expand ad ~concept:1;
  Alcotest.(check bool) "cadence hit: model republished" true
    (fp0 <> (A.model ad).Probability.fingerprint)

(* --- evidence store ------------------------------------------------------ *)

let test_evidence_decay_and_clear () =
  let ev = Ev.create ~half_life_ms:100. () in
  Ev.observe_expand ev ~now_ms:0. ~concept:9;
  Ev.observe_show ev ~now_ms:0. ~concept:9;
  Alcotest.(check (float 1e-9)) "fresh" 1. (Ev.counts ev ~now_ms:0. ~concept:9).Ev.expands;
  Alcotest.(check (float 1e-9)) "one half-life" 0.5
    (Ev.counts ev ~now_ms:100. ~concept:9).Ev.expands;
  Alcotest.(check (float 0.)) "fully decayed snaps to zero" 0.
    (Ev.counts ev ~now_ms:1e7 ~concept:9).Ev.expands;
  Alcotest.(check int) "decayed concepts drop out" 0 (Ev.concept_count ev ~now_ms:1e7);
  Alcotest.(check int) "observations are monotone" 2 (Ev.observations ev);
  Ev.clear ev;
  Alcotest.(check int) "cleared" 0 (Ev.observations ev)

let test_evidence_rejects_bad_half_life () =
  List.iter
    (fun hl ->
      Alcotest.(check bool) (string_of_float hl) true
        (try
           ignore (Ev.create ~half_life_ms:hl ());
           false
         with Invalid_argument _ -> true))
    [ 0.; -5. ]

(* --- engine integration: model identity across a refresh ----------------- *)

module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils

let world =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:211 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 500;
         seeded_groups =
           [
             {
               G.tag = Some "cancer";
               cluster = [ List.nth deep 0; List.nth deep 7 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:212 h in
     (DB.of_medline m, Eu.create m))

let engine ?config () =
  let database, eutils = Lazy.force world in
  Engine.create ?config ~database ~eutils ()

let must_session = function
  | Ok (Engine.Session s) -> s
  | Ok Engine.No_results -> Alcotest.fail "unexpected No_results"
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let session_fingerprint s =
  Navigation.model_fingerprint (Navigation.strategy (Engine.navigation s))

let test_engine_without_adaptive () =
  let e = engine () in
  Alcotest.(check bool) "no adaptive store" true (Engine.adaptive e = None);
  Alcotest.(check bool) "learn refused" false
    (Engine.learn e [ Session_log.Expanded { concept = 1; revealed = [] } ]);
  let s = must_session (Engine.search e "cancer") in
  Alcotest.(check string) "static model" Probability.default_model.Probability.fingerprint
    (session_fingerprint s)

let test_engine_substitutes_learned_model () =
  let e = engine ~config:{ Engine.default_config with Engine.adaptive = Some A.default_config } () in
  let ad = match Engine.adaptive e with Some ad -> ad | None -> Alcotest.fail "no store" in
  (* Default-model searches get the live learned model... *)
  let s1 = must_session (Engine.search e "cancer") in
  Alcotest.(check string) "learned model substituted" (A.model ad).Probability.fingerprint
    (session_fingerprint s1);
  (* ...and a model update means later sessions (and their plan-cache keys,
     which embed this fingerprint) can never alias the old epoch's plans. *)
  let fp_before = session_fingerprint s1 in
  Alcotest.(check bool) "learn accepted" true
    (Engine.learn e [ Session_log.Expanded { concept = 3; revealed = [ 4; 5 ] } ]);
  let s2 = must_session (Engine.search e "cancer") in
  Alcotest.(check bool) "new epoch, new cache key" true (fp_before <> session_fingerprint s2);
  (* An explicitly pinned non-default model is left alone: A/B arms stay pinned. *)
  let pinned =
    Navigation.bionav
      ~params:{ Probability.default_params with Probability.upper_threshold = 51 }
      ()
  in
  let s3 = must_session (Engine.search e ~strategy:pinned "cancer") in
  Alcotest.(check string) "pinned strategy untouched" (Navigation.model_fingerprint pinned)
    (session_fingerprint s3)

let test_engine_expand_feeds_evidence () =
  let e = engine ~config:{ Engine.default_config with Engine.adaptive = Some A.default_config } () in
  let ad = match Engine.adaptive e with Some ad -> ad | None -> Alcotest.fail "no store" in
  let s = must_session (Engine.search e "cancer") in
  let active = Navigation.active (Engine.navigation s) in
  let root =
    match List.find_opt (Active_tree.is_expandable active) (Active_tree.visible active) with
    | Some n -> n
    | None -> Alcotest.fail "nothing expandable"
  in
  ignore (Engine.expand s root : int list);
  Alcotest.(check bool) "expand observed" true (A.observations ad >= 1);
  (* Closing the session flushes revealed-but-ignored concepts as evidence. *)
  let before = A.observations ad in
  ignore (Engine.close e (Engine.session_id s) : bool);
  Alcotest.(check bool) "ignores flushed on close" true (A.observations ad > before)

let () =
  Alcotest.run "adaptive"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest qcheck_zero_evidence_is_static;
          QCheck_alcotest.to_alcotest qcheck_decayed_is_static;
          Alcotest.test_case "simulate traces" `Quick test_zero_evidence_simulate_traces;
          Alcotest.test_case "evidence moves the model" `Quick test_evidence_changes_model;
        ] );
      ( "learning",
        [
          Alcotest.test_case "engaged vs ignored" `Quick test_learn_engaged_vs_ignored;
          Alcotest.test_case "fingerprint bumps" `Quick test_learn_bumps_fingerprint;
          Alcotest.test_case "refresh cadence" `Quick test_observe_refresh_cadence;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "decay and clear" `Quick test_evidence_decay_and_clear;
          Alcotest.test_case "bad half-life" `Quick test_evidence_rejects_bad_half_life;
        ] );
      ( "engine",
        [
          Alcotest.test_case "disabled by default" `Quick test_engine_without_adaptive;
          Alcotest.test_case "model substitution" `Quick test_engine_substitutes_learned_model;
          Alcotest.test_case "expand feeds evidence" `Quick test_engine_expand_feeds_evidence;
        ] );
    ]
