module TN = Bionav_mesh.Tree_number

let tn = Alcotest.testable TN.pp TN.equal

let test_root () =
  Alcotest.(check string) "empty string" "" (TN.to_string TN.root);
  Alcotest.(check int) "depth 0" 0 (TN.depth TN.root);
  Alcotest.(check bool) "no parent" true (TN.parent TN.root = None)

let test_parse_format_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (TN.to_string (TN.of_string s)))
    [ "A"; "C04"; "C04.588"; "C04.588.033"; "Z99.001.002.003" ]

let test_parse_empty_is_root () = Alcotest.check tn "root" TN.root (TN.of_string "")

let test_parse_rejects_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (try
           ignore (TN.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "."; "A.."; "A."; ".A"; "a01"; "A 1"; "A-1" ]

let test_child_letters () =
  Alcotest.(check string) "first child" "A" (TN.to_string (TN.child TN.root 0));
  Alcotest.(check string) "second child" "B" (TN.to_string (TN.child TN.root 1));
  Alcotest.(check string) "26th wraps" "A1" (TN.to_string (TN.child TN.root 26))

let test_child_numeric () =
  let a = TN.child TN.root 0 in
  Alcotest.(check string) "padded" "A.000" (TN.to_string (TN.child a 0));
  Alcotest.(check string) "padded 12" "A.012" (TN.to_string (TN.child a 12))

let test_parent_inverse_of_child () =
  let t = TN.of_string "C04.588.033" in
  Alcotest.check tn "parent" (TN.of_string "C04.588") (Option.get (TN.parent t));
  let c = TN.child t 5 in
  Alcotest.check tn "child's parent" t (Option.get (TN.parent c))

let test_depth () =
  Alcotest.(check int) "depth 3" 3 (TN.depth (TN.of_string "C04.588.033"));
  Alcotest.(check int) "depth 1" 1 (TN.depth (TN.of_string "C04"))

let test_is_ancestor () =
  let a = TN.of_string "C04" and b = TN.of_string "C04.588" and c = TN.of_string "C05" in
  Alcotest.(check bool) "parent is ancestor" true (TN.is_ancestor a b);
  Alcotest.(check bool) "root is ancestor" true (TN.is_ancestor TN.root a);
  Alcotest.(check bool) "not self" false (TN.is_ancestor a a);
  Alcotest.(check bool) "not sibling" false (TN.is_ancestor a c);
  Alcotest.(check bool) "not reverse" false (TN.is_ancestor b a)

let test_compare_ancestor_first () =
  let a = TN.of_string "C04" and b = TN.of_string "C04.588" in
  Alcotest.(check bool) "ancestor sorts first" true (TN.compare a b < 0);
  Alcotest.(check int) "equal" 0 (TN.compare a (TN.of_string "C04"))

let qcheck_child_parent_inverse =
  QCheck.Test.make ~name:"parent (child t i) = t" ~count:300
    QCheck.(pair (int_range 0 50) (list_of_size (QCheck.Gen.int_range 0 5) (int_range 0 200)))
    (fun (first, rest) ->
      let t = List.fold_left (fun acc i -> TN.child acc i) (TN.child TN.root first) rest in
      let deep = TN.child t 3 in
      TN.equal (Option.get (TN.parent deep)) t)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"of_string (to_string t) = t" ~count:300
    QCheck.(pair (int_range 0 40) (list_of_size (QCheck.Gen.int_range 0 6) (int_range 0 999)))
    (fun (first, rest) ->
      let t = List.fold_left (fun acc i -> TN.child acc i) (TN.child TN.root first) rest in
      TN.equal (TN.of_string (TN.to_string t)) t)

let () =
  Alcotest.run "tree_number"
    [
      ( "unit",
        [
          Alcotest.test_case "root" `Quick test_root;
          Alcotest.test_case "parse/format roundtrip" `Quick test_parse_format_roundtrip;
          Alcotest.test_case "parse empty" `Quick test_parse_empty_is_root;
          Alcotest.test_case "parse rejects malformed" `Quick test_parse_rejects_malformed;
          Alcotest.test_case "child letters" `Quick test_child_letters;
          Alcotest.test_case "child numeric" `Quick test_child_numeric;
          Alcotest.test_case "parent inverse" `Quick test_parent_inverse_of_child;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
          Alcotest.test_case "compare" `Quick test_compare_ancestor_first;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_child_parent_inverse;
          QCheck_alcotest.to_alcotest qcheck_roundtrip;
        ] );
    ]
