(* Navigation spaces: facet-partition exactness, refine/unrefine snapshot
   restoration, space identity through the engine, and cache behaviour on
   revisited refinements. *)

open Bionav_util
open Bionav_core
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module Medline = Bionav_corpus.Medline
module Citation = Bionav_corpus.Citation
module Qualifiers = Bionav_mesh.Qualifiers
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils
module Nav_snapshot = Bionav_search.Nav_snapshot
module Engine = Bionav_engine.Engine

(* A small corpus with a seeded, findable query word (same recipe as
   test_engine, different seeds). *)
let world =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:311 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 500;
         seeded_groups =
           [
             {
               G.tag = Some "cancer";
               cluster = [ List.nth deep 0; List.nth deep 7 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:312 h in
     (m, DB.of_medline m, Eu.create m))

let engine ?config () =
  let _, database, eutils = Lazy.force world in
  Engine.create ?config ~database ~eutils ()

let must_session = function
  | Ok (Engine.Session s) -> s
  | Ok Engine.No_results -> Alcotest.fail "unexpected No_results"
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let deriver () =
  let m, database, _ = Lazy.force world in
  Nav_space.deriver ~medline:m database

(* --- facet partition exactness ------------------------------------------ *)

(* A seeded sub-sample of the corpus' citation ids. *)
let subset_of_seed seed =
  let m, _, _ = Lazy.force world in
  let rng = Rng.create seed in
  let ids =
    Array.to_list (Medline.citations m)
    |> List.filter_map (fun c -> if Rng.int rng 3 > 0 then Some (Citation.id c) else None)
  in
  Docset.of_list ids

let check_facet_partition subset =
  let d = deriver () in
  let fnav = Nav_space.derive d Nav_space.Qualifier_facet subset in
  let root = Nav_tree.root fnav in
  (* The root covers exactly the result set... *)
  if not (Docset.equal (Nav_tree.subtree_results fnav root) subset) then
    Alcotest.fail "facet root does not cover the result set";
  (* ...and the pages partition it: cardinalities sum to the whole and the
     union reproduces it, so no citation is lost or duplicated. *)
  let pages = List.init (Nav_tree.size fnav - 1) (fun i -> i + 1) in
  let total =
    List.fold_left (fun acc i -> acc + Docset.cardinal (Nav_tree.subtree_results fnav i)) 0 pages
  in
  Alcotest.(check int) "page cardinalities sum to |L|" (Docset.cardinal subset) total;
  let union =
    Docset.union_many (List.map (fun i -> Nav_tree.subtree_results fnav i) pages)
  in
  if not (Docset.equal union subset) then Alcotest.fail "page union differs from result set";
  (* Every citation sits on the page of its primary qualifier. *)
  let m, _, _ = Lazy.force world in
  Docset.iter
    (fun id ->
      let c = Medline.citation m id in
      let concept = Nav_space.page_concept (Nav_space.primary_qualifier c) in
      match Nav_tree.node_of_concept fnav concept with
      | None -> Alcotest.fail (Printf.sprintf "citation %d: its page is absent" id)
      | Some node ->
          if not (Docset.mem id (Nav_tree.subtree_results fnav node)) then
            Alcotest.fail (Printf.sprintf "citation %d not on its primary page" id))
    subset

let test_facet_partition_full () =
  let m, _, _ = Lazy.force world in
  check_facet_partition
    (Docset.of_list (Array.to_list (Array.map Citation.id (Medline.citations m))))

let prop_facet_partition =
  QCheck.Test.make ~name:"facet pages partition any result set" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      check_facet_partition (subset_of_seed seed);
      true)

(* --- refine / unrefine through the engine ------------------------------- *)

(* Canonical rendering of everything a snapshot shows the user; two
   snapshots with equal renderings are indistinguishable to every reader. *)
let snapshot_fingerprint snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "query=%s space=%s depth=%d distinct=%d fp=%s\n"
       (Nav_snapshot.query snap) (Nav_snapshot.space snap)
       (Nav_snapshot.refine_depth snap)
       (Nav_snapshot.distinct_results snap)
       (Nav_snapshot.model_fingerprint snap));
  let stats = Nav_snapshot.stats snap in
  Buffer.add_string buf
    (Printf.sprintf "expands=%d revealed=%d listed=%d\n" stats.Navigation.expands
       stats.Navigation.revealed stats.Navigation.results_listed);
  Nav_snapshot.iter snap (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%s|%d|%b|%d|%s|%s\n" v.Nav_snapshot.id v.Nav_snapshot.label
           v.Nav_snapshot.distinct v.Nav_snapshot.expandable v.Nav_snapshot.parent
           (String.concat "," (List.map string_of_int v.Nav_snapshot.children))
           (String.concat ","
              (List.map string_of_int (Array.to_list v.Nav_snapshot.members)))));
  Buffer.contents buf

let first_refinable s =
  let nav = Engine.session_nav s in
  let active = Navigation.active (Engine.navigation s) in
  List.find_opt (fun v -> v <> Nav_tree.root nav) (Active_tree.visible active)

let test_refine_end_to_end () =
  let e = engine () in
  let s = must_session (Engine.search e "cancer") in
  ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)) : int list);
  Alcotest.(check string) "base space" "descriptor" (Engine.space_id s);
  Alcotest.(check int) "base depth" 0 (Engine.refine_depth s);
  let nav = Engine.session_nav s in
  let node = Option.get (first_refinable s) in
  let concept = Nav_tree.concept_id nav node in
  let expected = Docset.cardinal (Nav_tree.subtree_results nav node) in
  let narrowed = Engine.refine s node in
  Alcotest.(check int) "refined to L(n)" expected narrowed;
  Alcotest.(check string) "space id"
    (Printf.sprintf "descriptor>refine:%d" concept)
    (Engine.space_id s);
  Alcotest.(check int) "depth" 1 (Engine.refine_depth s);
  (* The derived space is live: the snapshot reflects it and expanding
     works inside it. *)
  let snap = Engine.snapshot s in
  Alcotest.(check string) "snapshot space" (Engine.space_id s) (Nav_snapshot.space snap);
  Alcotest.(check int) "snapshot results" expected (Nav_snapshot.distinct_results snap);
  ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)) : int list);
  Alcotest.(check bool) "unrefine pops" true (Engine.unrefine s);
  Alcotest.(check string) "back to base" "descriptor" (Engine.space_id s);
  Alcotest.(check bool) "nothing left to pop" false (Engine.unrefine s)

let test_refine_validates () =
  let e = engine () in
  let s = must_session (Engine.search e "cancer") in
  let nav = Engine.session_nav s in
  Alcotest.(check bool) "root refine rejected" true
    (try
       ignore (Engine.refine s (Nav_tree.root nav));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "hidden node rejected" true
    (try
       ignore (Engine.refine s (Nav_tree.size nav - 1));
       false
     with Invalid_argument _ -> true)

let test_facet_end_to_end () =
  let e = engine () in
  let s = must_session (Engine.search e "cancer") in
  let base_results = Nav_tree.distinct_results (Engine.session_nav s) in
  let pages = Engine.facet s in
  Alcotest.(check bool) "some pages" true (pages >= 1 && pages <= Qualifiers.count + 1);
  Alcotest.(check string) "facet space id" "descriptor>facets" (Engine.space_id s);
  Alcotest.(check int) "facet preserves the result set" base_results
    (Nav_tree.distinct_results (Engine.session_nav s));
  (* Faceting a facet space is refused. *)
  Alcotest.(check bool) "no facet of facet" true
    (try
       ignore (Engine.facet s);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unrefine pops the facet" true (Engine.unrefine s);
  Alcotest.(check string) "back to descriptor" "descriptor" (Engine.space_id s)

let test_faceted_strategy_search () =
  let e = engine () in
  let s = must_session (Engine.search e ~strategy:(Navigation.faceted ()) "cancer") in
  Alcotest.(check string) "starts in the qualifier space" "qualifier" (Engine.space_id s);
  Alcotest.(check int) "base of the stack" 0 (Engine.refine_depth s);
  (* Expanding the facet root reveals qualifier pages. *)
  let revealed = Engine.expand s (Nav_tree.root (Engine.session_nav s)) in
  Alcotest.(check bool) "pages revealed" true (revealed <> [])

(* Refine → unrefine restores a byte-identical user-visible snapshot (the
   epoch advances; everything else is untouched), regardless of how much
   navigation happened inside the derived space. *)
let prop_refine_roundtrip =
  QCheck.Test.make ~name:"refine/unrefine restores the snapshot" ~count:15
    QCheck.(pair (int_bound 3) (int_bound 1000))
    (fun (pre_expands, pick) ->
      let e = engine () in
      let s = must_session (Engine.search e "cancer") in
      for _ = 1 to pre_expands do
        let active = Navigation.active (Engine.navigation s) in
        match List.filter (Active_tree.is_expandable active) (Active_tree.visible active) with
        | [] -> ()
        | r :: _ -> ignore (Engine.expand s r : int list)
      done;
      let before = Engine.snapshot s in
      let nav = Engine.session_nav s in
      let active = Navigation.active (Engine.navigation s) in
      match List.filter (fun v -> v <> Nav_tree.root nav) (Active_tree.visible active) with
      | [] -> QCheck.assume_fail ()
      | candidates ->
          let node = List.nth candidates (pick mod List.length candidates) in
          ignore (Engine.refine s node : int);
          (* Navigate inside the derived space; none of it may leak out. *)
          let nav' = Engine.session_nav s in
          ignore (Engine.expand s (Nav_tree.root nav') : int list);
          if not (Engine.unrefine s) then Alcotest.fail "unrefine failed";
          let after = Engine.snapshot s in
          if Nav_snapshot.epoch after <= Nav_snapshot.epoch before then
            Alcotest.fail "epoch did not advance";
          String.equal (snapshot_fingerprint before) (snapshot_fingerprint after))

(* --- caches across revisited refinements -------------------------------- *)

let test_revisited_refinement_hits_caches () =
  let e =
    engine
      ~config:
        { Engine.default_config with
          Engine.prefetch = Some Bionav_prefetch.Prefetch.default_config }
      ()
  in
  let drive () =
    let s = must_session (Engine.search e "cancer") in
    ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)) : int list);
    let node = Option.get (first_refinable s) in
    let narrowed = Engine.refine s node in
    let space = Engine.space_id s in
    ignore (Engine.expand s (Nav_tree.root (Engine.session_nav s)) : int list);
    ignore (Engine.unrefine s : bool);
    ignore (Engine.close e (Engine.session_id s) : bool);
    (space, narrowed)
  in
  let hits0 = Metrics.value (Metrics.counter "bionav_cache_hits_total") in
  let space1, narrowed1 = drive () in
  let space2, narrowed2 = drive () in
  Alcotest.(check string) "same space id on revisit" space1 space2;
  Alcotest.(check int) "same result set on revisit" narrowed1 narrowed2;
  let hits1 = Metrics.value (Metrics.counter "bionav_cache_hits_total") in
  Alcotest.(check bool) "revisit served from the nav cache" true (hits1 > hits0);
  Alcotest.(check bool) "plans reused under refinement churn" true
    (Engine.plan_cache_hit_rate e > 0.)

let test_derivation_histograms_populated () =
  let d = deriver () in
  let m, _, _ = Lazy.force world in
  let subset = Docset.of_list (Array.to_list (Array.map Citation.id (Medline.citations m))) in
  let dh = Metrics.histogram "bionav_space_derivation_ms_descriptor" in
  let qh = Metrics.histogram "bionav_space_derivation_ms_qualifier" in
  let d0 = Metrics.count dh and q0 = Metrics.count qh in
  ignore (Nav_space.derive d Nav_space.Descriptor subset : Nav_tree.t);
  ignore (Nav_space.derive d Nav_space.Qualifier_facet subset : Nav_tree.t);
  Alcotest.(check int) "descriptor derivation observed" (d0 + 1) (Metrics.count dh);
  Alcotest.(check int) "qualifier derivation observed" (q0 + 1) (Metrics.count qh)

let test_deriver_without_medline () =
  let _, database, _ = Lazy.force world in
  let d = Nav_space.deriver database in
  Alcotest.(check bool) "descriptor supported" true (Nav_space.supports d Nav_space.Descriptor);
  Alcotest.(check bool) "facet unsupported" false
    (Nav_space.supports d Nav_space.Qualifier_facet);
  Alcotest.(check bool) "facet derive raises" true
    (try
       ignore (Nav_space.derive d Nav_space.Qualifier_facet (Docset.of_list [ 1; 2 ]));
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "navspace"
    [
      ( "facet",
        [
          Alcotest.test_case "full-corpus partition" `Quick test_facet_partition_full;
          QCheck_alcotest.to_alcotest prop_facet_partition;
        ] );
      ( "engine",
        [
          Alcotest.test_case "refine end-to-end" `Quick test_refine_end_to_end;
          Alcotest.test_case "refine validates" `Quick test_refine_validates;
          Alcotest.test_case "facet end-to-end" `Quick test_facet_end_to_end;
          Alcotest.test_case "faceted strategy" `Quick test_faceted_strategy_search;
          QCheck_alcotest.to_alcotest prop_refine_roundtrip;
        ] );
      ( "caches",
        [
          Alcotest.test_case "revisit hits caches" `Quick test_revisited_refinement_hits_caches;
          Alcotest.test_case "derivation histograms" `Quick
            test_derivation_histograms_populated;
          Alcotest.test_case "deriver without medline" `Quick test_deriver_without_medline;
        ] );
    ]
