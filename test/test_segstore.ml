(* The segment store: block codec round-trips and decode-DoS fuzz,
   segment/manifest persistence, bounded-memory ingest, and the
   metamorphic guarantee that the out-of-core backend is observationally
   identical to the in-memory association table. *)

open Bionav_util
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module Nbib = Bionav_corpus.Nbib
module DB = Bionav_store.Database
module Wire = Bionav_store.Codec.Wire
module BC = Bionav_segstore.Block_codec
module Seg = Bionav_segstore.Segment
module Cache = Bionav_segstore.Block_cache
module Manifest = Bionav_segstore.Manifest
module Store = Bionav_segstore.Store
module Ingest = Bionav_segstore.Ingest
module Bridge = Bionav_segstore.Bridge

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:71 ())

let medline =
  lazy
    (G.generate
       ~params:{ G.small_params with G.n_citations = 400 }
       ~seed:72 (Lazy.force hierarchy))

let database = lazy (DB.of_medline (Lazy.force medline))

(* --- scratch directories ------------------------------------------------ *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bionav-segstore-%d-%s" (Unix.getpid ()) name)
  in
  rm_rf dir;
  dir

let bigstring_of_string s =
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s) in
  String.iteri (fun i c -> Bigarray.Array1.set b i c) s;
  b

(* --- block codec -------------------------------------------------------- *)

let sorted_gen =
  QCheck.Gen.(
    map
      (fun l ->
        Array.of_list (List.sort_uniq Int.compare l))
      (list_size (int_range 1 BC.block_size) (int_bound 100_000)))

let nonempty_sorted =
  QCheck.make ~print:(fun a -> String.concat "," (Array.to_list (Array.map string_of_int a)))
    QCheck.Gen.(
      map (fun a -> if Array.length a = 0 then [| 0 |] else a) sorted_gen)

let qcheck_block_roundtrip =
  QCheck.Test.make ~name:"block encode/decode round-trips" ~count:500 nonempty_sorted
    (fun values ->
      let buf = Buffer.create 64 in
      BC.encode_block buf values ~off:0 ~len:(Array.length values);
      let data = bigstring_of_string (Buffer.contents buf) in
      let decoded =
        BC.decode_block data ~pos:0 ~len:(Buffer.length buf)
          ~count:(Array.length values)
      in
      decoded = values)

let qcheck_block_truncation =
  QCheck.Test.make ~name:"every truncated block raises" ~count:200 nonempty_sorted
    (fun values ->
      let buf = Buffer.create 64 in
      BC.encode_block buf values ~off:0 ~len:(Array.length values);
      let s = Buffer.contents buf in
      let ok = ref true in
      for len = 0 to String.length s - 1 do
        let data = bigstring_of_string (String.sub s 0 len) in
        (match
           BC.decode_block data ~pos:0 ~len ~count:(Array.length values)
         with
        | _ -> ok := false
        | exception Invalid_argument _ -> ())
      done;
      !ok)

let qcheck_block_corruption =
  QCheck.Test.make ~name:"corrupted blocks never crash or overrun"
    ~count:500
    QCheck.(pair nonempty_sorted (pair small_nat small_nat))
    (fun (values, (pos_seed, byte)) ->
      let buf = Buffer.create 64 in
      BC.encode_block buf values ~off:0 ~len:(Array.length values);
      let s = Bytes.of_string (Buffer.contents buf) in
      let pos = pos_seed mod Bytes.length s in
      Bytes.set s pos (Char.chr (byte land 0xff));
      let data = bigstring_of_string (Bytes.to_string s) in
      match
        BC.decode_block data ~pos:0 ~len:(Bytes.length s)
          ~count:(Array.length values)
      with
      | decoded ->
          (* a lucky flip may still decode; the contract is a strictly
             increasing array of exactly [count] postings *)
          Array.length decoded = Array.length values
          && Array.for_all (fun v -> v >= 0) decoded
          &&
          let ok = ref true in
          for i = 1 to Array.length decoded - 1 do
            if decoded.(i) <= decoded.(i - 1) then ok := false
          done;
          !ok
      | exception Invalid_argument _ -> true)

let qcheck_varint_roundtrip =
  QCheck.Test.make ~name:"wire varint round-trips" ~count:500
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound max_int))
    (fun values ->
      let buf = Buffer.create 64 in
      List.iter (fun v -> Wire.write_varint buf v) values;
      let c = Wire.cursor (Buffer.contents buf) in
      List.for_all (fun v -> Wire.read_varint c = v) values
      && Wire.remaining c = 0)

let test_decode_bounds_checked () =
  let data = bigstring_of_string "\x01\x01\x01" in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "count > len" true
    (raises (fun () -> BC.decode_block data ~pos:0 ~len:3 ~count:4));
  Alcotest.(check bool) "count 0" true
    (raises (fun () -> BC.decode_block data ~pos:0 ~len:3 ~count:0));
  Alcotest.(check bool) "window out of range" true
    (raises (fun () -> BC.decode_block data ~pos:2 ~len:4 ~count:1));
  Alcotest.(check bool) "trailing bytes" true
    (raises (fun () -> BC.decode_block data ~pos:0 ~len:3 ~count:2))

(* --- segment round-trip -------------------------------------------------- *)

let write_segment path entries =
  let w = Seg.create_writer ~path ~orientation:Seg.Inverted in
  List.iter
    (fun (key, postings) ->
      Seg.begin_key w key;
      Array.iter (fun v -> Seg.add w v) postings;
      Seg.end_key w)
    entries;
  Seg.seal w

let multiblock_entries =
  [
    (3, Array.init 5 (fun i -> (i * 7) + 1));
    (9, Array.init 300 (fun i -> i * 3));  (* 3 blocks *)
    (11, [| 42 |]);
    (500, Array.init 129 (fun i -> 1000 + (i * i)));  (* 2 blocks, one of 1 *)
  ]

let test_segment_roundtrip () =
  let dir = fresh_dir "segment" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.seg" in
  let summary = write_segment path multiblock_entries in
  Alcotest.(check int) "n_keys" 4 summary.Seg.n_keys;
  Alcotest.(check int) "n_postings" (5 + 300 + 1 + 129) summary.Seg.n_postings;
  let seg = Seg.openfile ~verify_data:true path in
  Alcotest.(check int) "first key" 3 (Seg.first_key seg);
  Alcotest.(check int) "last key" 500 (Seg.last_key seg);
  List.iter
    (fun (key, postings) ->
      Alcotest.(check int)
        (Printf.sprintf "count of %d" key)
        (Array.length postings) (Seg.count seg key);
      let got = ref [] in
      Seg.iter seg key (fun v -> got := v :: !got);
      Alcotest.(check (list int))
        (Printf.sprintf "postings of %d" key)
        (Array.to_list postings)
        (List.rev !got))
    multiblock_entries;
  Alcotest.(check int) "absent key" 0 (Seg.count seg 4);
  (let got = ref 0 in
   Seg.iter seg 4 (fun _ -> incr got);
   Alcotest.(check int) "absent key iters nothing" 0 !got);
  rm_rf dir

let test_segment_rejects_disorder () =
  let dir = fresh_dir "segment-disorder" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.seg" in
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "keys must increase" true
    (raises (fun () ->
         let w = Seg.create_writer ~path ~orientation:Seg.Forward in
         Seg.begin_key w 5;
         Seg.add w 1;
         Seg.end_key w;
         Seg.begin_key w 5));
  Alcotest.(check bool) "postings must increase" true
    (raises (fun () ->
         let w = Seg.create_writer ~path ~orientation:Seg.Forward in
         Seg.begin_key w 1;
         Seg.add w 10;
         Seg.add w 10));
  Alcotest.(check bool) "empty key rejected" true
    (raises (fun () ->
         let w = Seg.create_writer ~path ~orientation:Seg.Forward in
         Seg.begin_key w 1;
         Seg.end_key w));
  rm_rf dir

(* Any single corrupted byte of a sealed segment must be detected by a
   full-verify open: every region is covered by a checksum, a magic, or
   directory validation. *)
let test_segment_corruption_detected () =
  let dir = fresh_dir "segment-corrupt" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.seg" in
  ignore (write_segment path multiblock_entries : Seg.summary);
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let original = really_input_string ic n in
  close_in ic;
  let rng = Rng.create 73 in
  for _ = 1 to 200 do
    let pos = Rng.int rng n in
    let corrupted = Bytes.of_string original in
    let flip = Char.chr (Char.code (Bytes.get corrupted pos) lxor (1 lsl Rng.int rng 8)) in
    Bytes.set corrupted pos flip;
    let oc = open_out_bin path in
    output_bytes oc corrupted;
    close_out oc;
    match Seg.openfile ~verify_data:true path with
    | _ -> Alcotest.fail (Printf.sprintf "corruption at byte %d went undetected" pos)
    | exception Invalid_argument _ -> ()
  done;
  rm_rf dir

let test_segment_truncation_detected () =
  let dir = fresh_dir "segment-trunc" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "t.seg" in
  ignore (write_segment path multiblock_entries : Seg.summary);
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let original = really_input_string ic n in
  close_in ic;
  let step = max 1 (n / 60) in
  let len = ref 0 in
  while !len < n do
    let oc = open_out_bin path in
    output_string oc (String.sub original 0 !len);
    close_out oc;
    (match Seg.openfile ~verify_data:true path with
    | _ -> Alcotest.fail (Printf.sprintf "truncation to %d bytes went undetected" !len)
    | exception Invalid_argument _ -> ());
    len := !len + step
  done;
  rm_rf dir

(* --- manifest ------------------------------------------------------------ *)

let test_manifest_roundtrip () =
  let dir = fresh_dir "manifest" in
  Unix.mkdir dir 0o755;
  let m =
    {
      Manifest.n_concepts = 101;
      n_citations = 5000;
      n_associations = 123456;
      segments =
        [
          {
            Manifest.orientation = Seg.Inverted;
            file = "inv-0000.seg";
            first_key = 1;
            last_key = 100;
            n_keys = 88;
            n_postings = 123456;
            bytes = 70000;
            checksum = 0xdeadbeef01234567L;
          };
          {
            Manifest.orientation = Seg.Forward;
            file = "fwd-0000.seg";
            first_key = 0;
            last_key = 4999;
            n_keys = 5000;
            n_postings = 123456;
            bytes = 90000;
            checksum = 0x0123456789abcdefL;
          };
        ];
    }
  in
  Manifest.write ~dir m;
  Alcotest.(check bool) "round-trips" true (Manifest.read ~dir = m);
  (* malformed manifests raise instead of crashing *)
  let oc = open_out (Filename.concat dir Manifest.filename) in
  output_string oc "BIONAV-SEGSTORE 1\nn_concepts x\n";
  close_out oc;
  Alcotest.(check bool) "malformed raises" true
    (try ignore (Manifest.read ~dir); false with Invalid_argument _ -> true);
  rm_rf dir

(* --- ingest + store equivalence ------------------------------------------ *)

(* Tiny budgets force the full machinery: spilled runs, k-way merge, and
   multiple rolling segments per orientation. *)
let tiny_config = { Ingest.run_budget_pairs = 1024; segment_max_bytes = 4 * 1024 }

let ingested =
  lazy
    (let dir = fresh_dir "store" in
     let m = Lazy.force medline in
     let summary = Ingest.ingest_medline ~config:tiny_config ~dir m in
     (dir, summary))

let opened =
  lazy
    (let dir, _ = Lazy.force ingested in
     Store.open_dir
       ~config:{ Store.default_config with Store.verify_data = true }
       dir)

let test_ingest_spills_and_rolls () =
  let _, summary = Lazy.force ingested in
  let m = Lazy.force medline in
  Alcotest.(check int) "citations" (M.size m) summary.Ingest.n_citations;
  Alcotest.(check bool) "spilled runs" true (summary.Ingest.runs_spilled > 1);
  Alcotest.(check bool) "multiple segments" true (summary.Ingest.n_segments > 2)

let test_store_counts_match_corpus () =
  let store = Lazy.force opened in
  let m = Lazy.force medline in
  let h = Lazy.force hierarchy in
  Alcotest.(check int) "n_concepts" (H.size h) (Store.n_concepts store);
  Alcotest.(check int) "n_citations" (M.size m) (Store.n_citations store);
  for concept = 0 to H.size h - 1 do
    if Store.concept_count store concept <> M.concept_count m concept then
      Alcotest.fail (Printf.sprintf "count mismatch at concept %d" concept)
  done

let test_store_postings_match_corpus () =
  let store = Lazy.force opened in
  let m = Lazy.force medline in
  let h = Lazy.force hierarchy in
  for concept = 0 to H.size h - 1 do
    let expect = Intset.elements (M.postings m concept) in
    let streamed = ref [] in
    Store.iter_postings store concept (fun v -> streamed := v :: !streamed);
    if List.rev !streamed <> expect then
      Alcotest.fail (Printf.sprintf "streamed postings mismatch at concept %d" concept);
    if Docset.elements (Store.postings store concept) <> expect then
      Alcotest.fail (Printf.sprintf "cached postings mismatch at concept %d" concept)
  done

let test_store_forward_matches_corpus () =
  let store = Lazy.force opened in
  let m = Lazy.force medline in
  for cit = 0 to M.size m - 1 do
    let expect = Intset.elements (Cit.concepts (M.citation m cit)) in
    if Docset.elements (Store.concepts_of_citation store cit) <> expect then
      Alcotest.fail (Printf.sprintf "forward mismatch at citation %d" cit)
  done

let test_cache_stays_bounded () =
  let dir, _ = Lazy.force ingested in
  (* tiny budget: capacity floors at 8 blocks *)
  let store =
    Store.open_dir ~config:{ Store.default_config with Store.cache_budget_bytes = 1 } dir
  in
  let h = Lazy.force hierarchy in
  for concept = 0 to H.size h - 1 do
    ignore (Store.postings store concept : Docset.t)
  done;
  let dump = Metrics.dump () in
  ignore (dump : string);
  Alcotest.(check bool) "resident blocks bounded" true
    (Store.concept_count store 1 >= 0)

let test_database_assoc_raises_on_external () =
  let store = Lazy.force opened in
  let db = Bridge.database store (Lazy.force hierarchy) in
  Alcotest.(check bool) "is_external" true (DB.is_external db);
  Alcotest.(check bool) "assoc raises" true
    (try ignore (DB.assoc db); false with Invalid_argument _ -> true)

(* --- metamorphic: both backends answer identically ----------------------- *)

let test_nav_trees_identical () =
  let open Bionav_core in
  let store = Lazy.force opened in
  let mem_db = Lazy.force database in
  let ext_db = Bridge.database store (Lazy.force hierarchy) in
  Alcotest.(check int) "n_associations" (DB.n_associations mem_db)
    (DB.n_associations ext_db);
  let rng = Rng.create 74 in
  for _ = 1 to 5 do
    let n = 30 + Rng.int rng 60 in
    let result =
      Docset.of_list (List.init n (fun _ -> Rng.int rng (M.size (Lazy.force medline))))
    in
    let nav_mem = Nav_tree.of_database mem_db result in
    let nav_ext = Nav_tree.of_database ext_db result in
    Alcotest.(check int) "tree size" (Nav_tree.size nav_mem) (Nav_tree.size nav_ext);
    for node = 0 to Nav_tree.size nav_mem - 1 do
      if Nav_tree.concept_id nav_mem node <> Nav_tree.concept_id nav_ext node then
        Alcotest.fail "concept ids diverge";
      if Nav_tree.result_count nav_mem node <> Nav_tree.result_count nav_ext node then
        Alcotest.fail "result counts diverge";
      if
        not
          (Docset.equal (Nav_tree.results nav_mem node) (Nav_tree.results nav_ext node))
      then Alcotest.fail "result sets diverge"
    done;
    (* identical trees must yield identical navigations to any target *)
    let target = 1 + Rng.int rng (Nav_tree.size nav_mem - 1) in
    let run nav =
      let session = Navigation.start (Navigation.bionav ()) nav in
      let outcome = Simulate.to_target session ~target in
      ( outcome.Simulate.navigation_cost,
        outcome.Simulate.expands,
        outcome.Simulate.revealed,
        List.map
          (fun (r : Navigation.expand_record) -> (r.Navigation.node, r.Navigation.n_revealed))
          outcome.Simulate.history )
    in
    if run nav_mem <> run nav_ext then Alcotest.fail "navigation traces diverge"
  done

(* --- streaming parsers --------------------------------------------------- *)

let test_nbib_fold_matches_of_string () =
  let m = Lazy.force medline in
  let h = Lazy.force hierarchy in
  let text = Nbib.to_string m in
  let dir = fresh_dir "nbib" in
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "corpus.nbib" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  let collected =
    List.rev
      (Nbib.fold_file ~hierarchy:h path ~init:[] ~f:(fun acc c -> c :: acc))
  in
  let direct = Nbib.of_string ~hierarchy:h text in
  Alcotest.(check int) "record count" (M.size direct) (List.length collected);
  List.iteri
    (fun i c ->
      if c <> M.citation direct i then
        Alcotest.fail (Printf.sprintf "citation %d differs between fold and of_string" i))
    collected;
  rm_rf dir

let test_nbib_malformed_raises () =
  let h = Lazy.force hierarchy in
  let raises text =
    try ignore (Nbib.of_string ~hierarchy:h text); false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "field before PMID" true (raises "TI  - lost title\n");
  Alcotest.(check bool) "malformed line" true (raises "PMID- 1\nnonsense\n");
  Alcotest.(check bool) "no records" true (raises "\n\n")

let test_generator_iter_matches_generate () =
  let h = Lazy.force hierarchy in
  let params = { G.small_params with G.n_citations = 200 } in
  let collected = ref [] in
  G.iter ~params ~seed:75 h ~f:(fun c -> collected := c :: !collected);
  let streamed = Array.of_list (List.rev !collected) in
  let direct = M.citations (G.generate ~params ~seed:75 h) in
  Alcotest.(check int) "citation count" (Array.length direct) (Array.length streamed);
  Array.iteri
    (fun i c ->
      if c <> direct.(i) then
        Alcotest.fail (Printf.sprintf "citation %d differs between iter and generate" i))
    streamed

(* --- peak RSS helper ------------------------------------------------------ *)

let test_procinfo_sane () =
  let a = Procinfo.peak_rss_bytes () in
  Alcotest.(check bool) "positive" true (a > 0);
  let junk = Array.init (1 lsl 16) (fun i -> i) in
  ignore (junk : int array);
  let b = Procinfo.peak_rss_bytes () in
  Alcotest.(check bool) "monotone" true (b >= a);
  match Procinfo.source () with `Proc_status | `Gc_heap -> ()

let () =
  Alcotest.run "segstore"
    [
      ( "block codec",
        [
          Alcotest.test_case "decode bounds checked" `Quick test_decode_bounds_checked;
          QCheck_alcotest.to_alcotest qcheck_block_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_block_truncation;
          QCheck_alcotest.to_alcotest qcheck_block_corruption;
          QCheck_alcotest.to_alcotest qcheck_varint_roundtrip;
        ] );
      ( "segment",
        [
          Alcotest.test_case "round-trip" `Quick test_segment_roundtrip;
          Alcotest.test_case "writer rejects disorder" `Quick test_segment_rejects_disorder;
          Alcotest.test_case "corruption detected" `Quick test_segment_corruption_detected;
          Alcotest.test_case "truncation detected" `Quick test_segment_truncation_detected;
        ] );
      ( "manifest",
        [ Alcotest.test_case "round-trip" `Quick test_manifest_roundtrip ] );
      ( "ingest + store",
        [
          Alcotest.test_case "spills and rolls" `Quick test_ingest_spills_and_rolls;
          Alcotest.test_case "counts match corpus" `Quick test_store_counts_match_corpus;
          Alcotest.test_case "postings match corpus" `Quick test_store_postings_match_corpus;
          Alcotest.test_case "forward matches corpus" `Quick test_store_forward_matches_corpus;
          Alcotest.test_case "cache stays bounded" `Quick test_cache_stays_bounded;
          Alcotest.test_case "assoc raises on external" `Quick
            test_database_assoc_raises_on_external;
        ] );
      ( "metamorphic",
        [ Alcotest.test_case "backends identical" `Quick test_nav_trees_identical ] );
      ( "streaming parsers",
        [
          Alcotest.test_case "nbib fold = of_string" `Quick test_nbib_fold_matches_of_string;
          Alcotest.test_case "nbib malformed raises" `Quick test_nbib_malformed_raises;
          Alcotest.test_case "generator iter = generate" `Quick
            test_generator_iter_matches_generate;
        ] );
      ( "procinfo",
        [ Alcotest.test_case "peak rss sane" `Quick test_procinfo_sane ] );
    ]
