open Bionav_util

let test_time_returns_result () =
  let v, ms = Timing.time (fun () -> 21 * 2) in
  Alcotest.(check int) "result" 42 v;
  Alcotest.(check bool) "non-negative" true (ms >= 0.)

let test_time_measures_work () =
  let _, ms =
    Timing.time (fun () ->
        let acc = ref 0. in
        for i = 1 to 3_000_000 do
          acc := !acc +. sqrt (float_of_int i)
        done;
        ignore !acc)
  in
  Alcotest.(check bool) "measurably positive" true (ms > 0.)

let test_repeat_ms_mean () =
  let ms = Timing.repeat_ms 100 (fun () -> ()) in
  Alcotest.(check bool) "tiny for no-op" true (ms >= 0. && ms < 10.)

let () =
  Alcotest.run "timing"
    [
      ( "unit",
        [
          Alcotest.test_case "returns result" `Quick test_time_returns_result;
          Alcotest.test_case "measures work" `Quick test_time_measures_work;
          Alcotest.test_case "repeat mean" `Quick test_repeat_ms_mean;
        ] );
    ]
