(* The docset layer: interned, arena-backed result sets — arena storage
   semantics (dedup, representations, memoization) and handle semantics
   (cross-arena equality, rebasing, algebra). *)

open Bionav_util
module A = Docset_arena

let sorted l = List.sort_uniq compare l

(* --- arena ------------------------------------------------------------- *)

let test_empty_preinterned () =
  let a = A.create () in
  Alcotest.(check int) "empty id" A.empty_id (A.intern a [||]);
  Alcotest.(check int) "empty cardinal" 0 (A.cardinal a A.empty_id);
  Alcotest.(check (list int)) "no elements" [] (Array.to_list (A.to_array a A.empty_id))

let test_intern_dedups () =
  let a = A.create () in
  let id1 = A.intern a [| 1; 5; 9 |] in
  let id2 = A.intern a [| 1; 5; 9 |] in
  let id3 = A.intern a [| 1; 5; 10 |] in
  Alcotest.(check int) "same content same id" id1 id2;
  Alcotest.(check bool) "different content different id" true (id1 <> id3);
  let st = A.stats a in
  Alcotest.(check int) "one dedup hit" 1 st.A.dedup_hits;
  Alcotest.(check int) "empty + two distinct" 3 st.A.sets

let test_intern_rejects_unsorted () =
  let a = A.create () in
  Alcotest.check_raises "unsorted" (Invalid_argument "Docset_arena.intern: array must be sorted strictly increasing")
    (fun () -> ignore (A.intern a [| 3; 1 |]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Docset_arena.intern: array must be sorted strictly increasing")
    (fun () -> ignore (A.intern a [| 1; 1 |]))

let test_representations () =
  let a = A.create () in
  (* A contiguous run packs dense; scattered points stay sparse; negative
     elements force sparse. *)
  let dense = A.intern a (Array.init 100 Fun.id) in
  let sparse = A.intern a [| 0; 1000; 50000 |] in
  let negative = A.intern a [| -5; 0; 3 |] in
  let st = A.stats a in
  Alcotest.(check bool) "has dense" true (st.A.dense >= 1);
  Alcotest.(check bool) "has sparse" true (st.A.sparse >= 2);
  Alcotest.(check int) "dense cardinal" 100 (A.cardinal a dense);
  Alcotest.(check (list int)) "dense roundtrip" (List.init 100 Fun.id)
    (Array.to_list (A.to_array a dense));
  Alcotest.(check (list int)) "sparse roundtrip" [ 0; 1000; 50000 ]
    (Array.to_list (A.to_array a sparse));
  Alcotest.(check (list int)) "negative roundtrip" [ -5; 0; 3 ]
    (Array.to_list (A.to_array a negative));
  Alcotest.(check bool) "bytes accounted" true (st.A.bytes > 0)

let test_queries () =
  let a = A.create () in
  let id = A.intern a [| 2; 4; 8 |] in
  Alcotest.(check bool) "mem yes" true (A.mem a id 4);
  Alcotest.(check bool) "mem no" false (A.mem a id 5);
  Alcotest.(check int) "choose" 2 (A.choose a id);
  Alcotest.(check int) "fold sum" 14 (A.fold a id ( + ) 0);
  Alcotest.(check bool) "equal_array" true (A.equal_array a id [| 2; 4; 8 |]);
  Alcotest.(check bool) "equal_array no" false (A.equal_array a id [| 2; 4 |]);
  Alcotest.check_raises "choose empty" Not_found (fun () -> ignore (A.choose a A.empty_id))

let test_algebra_memoized () =
  let a = A.create () in
  let x = A.intern a [| 1; 2; 3; 4 |] in
  let y = A.intern a [| 3; 4; 5 |] in
  let u1 = A.union a x y in
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4; 5 ] (Array.to_list (A.to_array a u1));
  Alcotest.(check (list int)) "inter" [ 3; 4 ] (Array.to_list (A.to_array a (A.inter a x y)));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Array.to_list (A.to_array a (A.diff a x y)));
  let before = (A.stats a).A.memo_hits in
  let u2 = A.union a x y in
  let u3 = A.union a y x in
  Alcotest.(check int) "repeat is same id" u1 u2;
  Alcotest.(check int) "commutative memo" u1 u3;
  Alcotest.(check bool) "memo hits grew" true ((A.stats a).A.memo_hits > before)

let test_cardinal_family () =
  let a = A.create () in
  (* Mixed representations: dense/dense, dense/sparse, sparse/sparse. *)
  let d1 = A.intern a (Array.init 64 Fun.id) in
  let d2 = A.intern a (Array.init 64 (fun i -> i + 32)) in
  let s1 = A.intern a [| 5; 40; 900 |] in
  let s2 = A.intern a [| 40; 900; 7777 |] in
  let check name p q =
    let inter = A.cardinal a (A.inter a p q) and union = A.cardinal a (A.union a p q) in
    Alcotest.(check int) (name ^ " inter_cardinal") inter (A.inter_cardinal a p q);
    Alcotest.(check int) (name ^ " union_cardinal") union (A.union_cardinal a p q)
  in
  check "dense/dense" d1 d2;
  check "dense/sparse" d1 s1;
  check "sparse/dense" s1 d2;
  check "sparse/sparse" s1 s2;
  Alcotest.(check bool) "subset yes" true (A.subset a (A.inter a d1 d2) d1);
  Alcotest.(check bool) "subset no" false (A.subset a d1 d2)

let test_union_many_arena () =
  let a = A.create () in
  let ids = List.map (A.intern a) [ [| 1; 2 |]; [| 2; 3 |]; [| 9 |]; [| 1; 2 |] ] in
  let u = A.union_many a ids in
  Alcotest.(check (list int)) "union_many" [ 1; 2; 3; 9 ] (Array.to_list (A.to_array a u));
  Alcotest.(check int) "empty operands" A.empty_id (A.union_many a []);
  Alcotest.(check int) "singleton operand" (List.hd ids) (A.union_many a [ List.hd ids ])

(* --- handles ------------------------------------------------------------ *)

let test_handle_basics () =
  let s = Docset.of_list [ 5; 1; 5; 3 ] in
  Alcotest.(check (list int)) "sorted deduped" [ 1; 3; 5 ] (Docset.elements s);
  Alcotest.(check int) "cardinal" 3 (Docset.cardinal s);
  Alcotest.(check bool) "mem" true (Docset.mem 3 s);
  Alcotest.(check int) "choose" 1 (Docset.choose s);
  Alcotest.(check bool) "empty is empty" true (Docset.is_empty Docset.empty);
  Alcotest.(check bool) "singleton" true (Docset.elements (Docset.singleton 7) = [ 7 ])

let test_handle_equal_cross_arena () =
  let arena = A.create () in
  let a = Docset.of_list [ 1; 2; 3 ] in
  let b = Docset.of_list_in arena [ 3; 2; 1 ] in
  Alcotest.(check bool) "equal across arenas" true (Docset.equal a b);
  Alcotest.(check int) "same fingerprint" (Docset.fingerprint a) (Docset.fingerprint b);
  Alcotest.(check int) "compare 0" 0 (Docset.compare a b);
  let c = Docset.of_list [ 1; 2; 4 ] in
  Alcotest.(check bool) "unequal" false (Docset.equal a c);
  Alcotest.(check bool) "compare consistent" true (Docset.compare a c <> 0)

let test_handle_rebase () =
  let arena = A.create () in
  let a = Docset.of_list [ 1; 2; 3 ] in
  let a' = Docset.in_arena arena a in
  Alcotest.(check bool) "lives in target" true (Docset.arena a' == arena);
  Alcotest.(check bool) "same content" true (Docset.equal a a');
  Alcotest.(check bool) "no-op when already there" true (Docset.in_arena arena a' == a')

let test_handle_algebra_cross_arena () =
  let a = Docset.of_list [ 1; 2; 3 ] in
  let b = Docset.of_list [ 3; 4 ] in
  (* Distinct private arenas: the op must rebase and still be right. *)
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Docset.elements (Docset.union a b));
  Alcotest.(check (list int)) "inter" [ 3 ] (Docset.elements (Docset.inter a b));
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Docset.elements (Docset.diff a b));
  Alcotest.(check int) "inter_cardinal" 1 (Docset.inter_cardinal a b);
  Alcotest.(check int) "union_cardinal" 4 (Docset.union_cardinal a b);
  Alcotest.(check bool) "subset" true (Docset.subset (Docset.inter a b) b);
  Alcotest.(check bool) "union with empty" true
    (Docset.equal a (Docset.union a Docset.empty));
  Alcotest.(check bool) "empty union" true (Docset.equal a (Docset.union Docset.empty a))

let test_handle_union_many () =
  let sets = List.map Docset.of_list [ [ 1; 2 ]; []; [ 2; 9 ]; [ 0 ] ] in
  Alcotest.(check (list int)) "union_many" [ 0; 1; 2; 9 ]
    (Docset.elements (Docset.union_many sets));
  Alcotest.(check bool) "all empty" true (Docset.is_empty (Docset.union_many []))

let test_consolidate () =
  let sets = Array.of_list (List.map Docset.of_list [ [ 1; 2 ]; [ 2; 3 ]; [ 9 ] ]) in
  let c = Docset.consolidate sets in
  let home = Docset.arena c.(0) in
  Array.iter (fun s -> Alcotest.(check bool) "one arena" true (Docset.arena s == home)) c;
  Array.iteri
    (fun i s -> Alcotest.(check bool) "content kept" true (Docset.equal sets.(i) s))
    c

let test_intset_roundtrip () =
  let l = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let s = Docset.of_intset (Intset.of_list l) in
  Alcotest.(check (list int)) "of_intset" (sorted l) (Docset.elements s);
  Alcotest.(check (list int)) "to_intset" (sorted l) (Intset.elements (Docset.to_intset s))

let test_fingerprint_of_algebra () =
  (* A set produced by algebra fingerprints identically to the same set
     interned directly — plan-cache keys depend on this. *)
  let u = Docset.union (Docset.of_list [ 1; 2 ]) (Docset.of_list [ 2; 3 ]) in
  let direct = Docset.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "fingerprints agree" (Docset.fingerprint direct) (Docset.fingerprint u)

let () =
  Alcotest.run "docset"
    [
      ( "arena",
        [
          Alcotest.test_case "empty preinterned" `Quick test_empty_preinterned;
          Alcotest.test_case "intern dedups" `Quick test_intern_dedups;
          Alcotest.test_case "intern rejects unsorted" `Quick test_intern_rejects_unsorted;
          Alcotest.test_case "representations" `Quick test_representations;
          Alcotest.test_case "queries" `Quick test_queries;
          Alcotest.test_case "algebra memoized" `Quick test_algebra_memoized;
          Alcotest.test_case "cardinal family" `Quick test_cardinal_family;
          Alcotest.test_case "union_many" `Quick test_union_many_arena;
        ] );
      ( "handle",
        [
          Alcotest.test_case "basics" `Quick test_handle_basics;
          Alcotest.test_case "equal cross arena" `Quick test_handle_equal_cross_arena;
          Alcotest.test_case "rebase" `Quick test_handle_rebase;
          Alcotest.test_case "algebra cross arena" `Quick test_handle_algebra_cross_arena;
          Alcotest.test_case "union_many" `Quick test_handle_union_many;
          Alcotest.test_case "consolidate" `Quick test_consolidate;
          Alcotest.test_case "intset roundtrip" `Quick test_intset_roundtrip;
          Alcotest.test_case "fingerprint of algebra" `Quick test_fingerprint_of_algebra;
        ] );
    ]
