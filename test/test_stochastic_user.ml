open Bionav_util
open Bionav_core
module SU = Stochastic_user

(* A tree with enough citations that P_x = 1 at the root (distinct > 50). *)
let nav () =
  let parent = [| -1; 0; 1; 1; 0; 4; 4 |] in
  let h = Bionav_mesh.Hierarchy.of_parents parent in
  let attachments =
    List.init 6 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 15 (fun j -> (node * 20) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 600)

(* A tiny-result tree where P_x = 0 everywhere: the user must list
   immediately. *)
let tiny_nav () =
  let h = Bionav_mesh.Hierarchy.of_parents [| -1; 0; 0 |] in
  Nav_tree.build ~hierarchy:h
    ~attachments:[ (1, Docset.of_list [ 1; 2 ]); (2, Docset.of_list [ 3 ]) ]
    ~total_count:(fun _ -> 100)

let test_walk_terminates_with_showresults () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let o = SU.walk ~rng (Navigation.start (Navigation.bionav ()) (nav ())) in
    Alcotest.(check bool) "listed something or bounded" true
      (o.SU.results_listed > 0 || o.SU.expands > 0);
    Alcotest.(check int) "cost adds up" o.SU.total_cost
      (o.SU.expands + o.SU.revealed + o.SU.results_listed)
  done

let test_small_results_list_immediately () =
  let rng = Rng.create 2 in
  let o = SU.walk ~rng (Navigation.start (Navigation.bionav ()) (tiny_nav ())) in
  Alcotest.(check int) "no expands" 0 o.SU.expands;
  Alcotest.(check int) "all results listed" 3 o.SU.results_listed;
  Alcotest.(check int) "stopped at root" 0 o.SU.stopped_at

let test_sample_deterministic_in_seed () =
  let a = SU.sample ~walks:50 ~seed:7 (fun () -> Navigation.start (Navigation.bionav ()) (nav ())) in
  let b = SU.sample ~walks:50 ~seed:7 (fun () -> Navigation.start (Navigation.bionav ()) (nav ())) in
  Alcotest.(check (float 1e-9)) "same mean" a.SU.mean_cost b.SU.mean_cost;
  Alcotest.(check (float 1e-9)) "same median" a.SU.median_cost b.SU.median_cost

let test_sample_shapes () =
  let s = SU.sample ~walks:80 ~seed:9 (fun () -> Navigation.start Navigation.Static (nav ())) in
  Alcotest.(check int) "walks recorded" 80 s.SU.walks;
  Alcotest.(check bool) "positive cost" true (s.SU.mean_cost > 0.);
  Alcotest.(check bool) "median <= sane bound" true (s.SU.median_cost < 1000.)

let test_sample_rejects_zero_walks () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (SU.sample ~walks:0 ~seed:1 (fun () -> Navigation.start Navigation.Static (nav ())));
       false
     with Invalid_argument _ -> true)

let test_max_steps_bounds_walk () =
  let rng = Rng.create 3 in
  let o = SU.walk ~max_steps:1 ~rng (Navigation.start (Navigation.bionav ()) (nav ())) in
  Alcotest.(check bool) "at most one expand" true (o.SU.expands <= 1)

let () =
  Alcotest.run "stochastic_user"
    [
      ( "unit",
        [
          Alcotest.test_case "terminates" `Quick test_walk_terminates_with_showresults;
          Alcotest.test_case "small results list" `Quick test_small_results_list_immediately;
          Alcotest.test_case "seed determinism" `Quick test_sample_deterministic_in_seed;
          Alcotest.test_case "sample shapes" `Quick test_sample_shapes;
          Alcotest.test_case "rejects zero walks" `Quick test_sample_rejects_zero_walks;
          Alcotest.test_case "max steps" `Quick test_max_steps_bounds_walk;
        ] );
    ]
