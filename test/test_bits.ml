open Bionav_util

(* Reference implementation: shift-and-test. *)
let naive_popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let test_edge_cases () =
  Alcotest.(check int) "zero" 0 (Bits.popcount 0);
  Alcotest.(check int) "one" 1 (Bits.popcount 1);
  Alcotest.(check int) "max_int" 62 (Bits.popcount max_int);
  Alcotest.(check int) "min_int" 1 (Bits.popcount min_int);
  Alcotest.(check int) "minus one" 63 (Bits.popcount (-1))

let test_single_bits () =
  for i = 0 to 62 do
    Alcotest.(check int) (Printf.sprintf "bit %d" i) 1 (Bits.popcount (1 lsl i))
  done

let test_matches_naive_on_random () =
  let rng = Rng.create 42 in
  for _ = 1 to 10_000 do
    (* Compose a full-width random int from three 21-bit draws. *)
    let x =
      Rng.int rng (1 lsl 21)
      lor (Rng.int rng (1 lsl 21) lsl 21)
      lor (Rng.int rng (1 lsl 21) lsl 42)
    in
    Alcotest.(check int) (Printf.sprintf "popcount %x" x) (naive_popcount x) (Bits.popcount x)
  done

let test_half_boundary () =
  (* Values straddling the 32-bit split inside the implementation. *)
  List.iter
    (fun x -> Alcotest.(check int) (Printf.sprintf "%x" x) (naive_popcount x) (Bits.popcount x))
    [
      0xFFFFFFFF;
      0x100000000;
      0x1FFFFFFFF;
      0xFFFFFFFF lsl 32 land max_int;
      0x55555555 lor (0x55555555 lsl 32);
      0x33333333 lor (0x33333333 lsl 32);
    ]

let test_lowest_bit () =
  for i = 0 to 62 do
    Alcotest.(check int) (Printf.sprintf "1 lsl %d" i) i (Bits.lowest_bit (1 lsl i));
    (* Setting extra higher bits must not change the answer. *)
    if i < 60 then
      Alcotest.(check int)
        (Printf.sprintf "noisy 1 lsl %d" i)
        i
        (Bits.lowest_bit ((1 lsl i) lor (1 lsl 61) lor (1 lsl (i + 2))))
  done

let test_lowest_bit_rejects_zero () =
  Alcotest.(check bool) "zero mask" true
    (try
       ignore (Bits.lowest_bit 0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "bits"
    [
      ( "popcount",
        [
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "single bits" `Quick test_single_bits;
          Alcotest.test_case "random vs naive" `Quick test_matches_naive_on_random;
          Alcotest.test_case "32-bit boundary" `Quick test_half_boundary;
        ] );
      ( "lowest_bit",
        [
          Alcotest.test_case "all positions" `Quick test_lowest_bit;
          Alcotest.test_case "rejects zero" `Quick test_lowest_bit_rejects_zero;
        ] );
    ]
