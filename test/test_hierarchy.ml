module H = Bionav_mesh.Hierarchy
module C = Bionav_mesh.Concept
module TN = Bionav_mesh.Tree_number

(*      0
       / \
      1   4
     /|    \
    2 3     5
            |
            6        *)
let sample () = H.of_parents [| -1; 0; 1; 1; 0; 4; 5 |]

let test_size_and_root () =
  let h = sample () in
  Alcotest.(check int) "size" 7 (H.size h);
  Alcotest.(check int) "root" 0 (H.root h);
  Alcotest.(check int) "root parent" (-1) (H.parent h 0)

let test_children () =
  let h = sample () in
  Alcotest.(check (list int)) "root children" [ 1; 4 ] (H.children h 0);
  Alcotest.(check (list int)) "node 1" [ 2; 3 ] (H.children h 1);
  Alcotest.(check (list int)) "leaf" [] (H.children h 6)

let test_depth () =
  let h = sample () in
  Alcotest.(check (list int)) "depths" [ 0; 1; 2; 2; 1; 2; 3 ]
    (List.init 7 (H.depth h))

let test_is_leaf () =
  let h = sample () in
  Alcotest.(check (list bool)) "leaves" [ false; false; true; true; false; false; true ]
    (List.init 7 (H.is_leaf h))

let test_subtree_size () =
  let h = sample () in
  Alcotest.(check int) "root" 7 (H.subtree_size h 0);
  Alcotest.(check int) "node 1" 3 (H.subtree_size h 1);
  Alcotest.(check int) "node 4" 3 (H.subtree_size h 4);
  Alcotest.(check int) "leaf" 1 (H.subtree_size h 6)

let test_height_width () =
  let h = sample () in
  Alcotest.(check int) "height" 3 (H.height h);
  Alcotest.(check int) "max width" 3 (H.max_width h)

let test_ancestors_path () =
  let h = sample () in
  Alcotest.(check (list int)) "ancestors of 6" [ 5; 4; 0 ] (H.ancestors h 6);
  Alcotest.(check (list int)) "ancestors of root" [] (H.ancestors h 0);
  Alcotest.(check (list int)) "path" [ 0; 4; 5; 6 ] (H.path_from_root h 6)

let test_is_ancestor () =
  let h = sample () in
  Alcotest.(check bool) "root of all" true (H.is_ancestor h 0 6);
  Alcotest.(check bool) "direct" true (H.is_ancestor h 4 5);
  Alcotest.(check bool) "transitive" true (H.is_ancestor h 4 6);
  Alcotest.(check bool) "not self" false (H.is_ancestor h 3 3);
  Alcotest.(check bool) "not sibling" false (H.is_ancestor h 1 4);
  Alcotest.(check bool) "not reverse" false (H.is_ancestor h 6 4)

let test_descendants () =
  let h = sample () in
  Alcotest.(check (list int)) "node 4" [ 5; 6 ] (H.descendants h 4);
  Alcotest.(check (list int)) "root" [ 1; 2; 3; 4; 5; 6 ] (H.descendants h 0);
  Alcotest.(check (list int)) "leaf" [] (H.descendants h 2)

let test_iter_subtree_preorder () =
  let h = sample () in
  let acc = ref [] in
  H.iter_subtree h 0 (fun i -> acc := i :: !acc);
  Alcotest.(check (list int)) "preorder" [ 0; 1; 2; 3; 4; 5; 6 ] (List.rev !acc)

let test_fold_postorder () =
  let h = sample () in
  let size = H.fold_postorder h 0 (fun _ kids -> 1 + List.fold_left ( + ) 0 kids) in
  Alcotest.(check int) "counts nodes" 7 size

let test_find_by_label () =
  let h = sample () in
  Alcotest.(check (option int)) "found" (Some 3) (H.find_by_label h "node-3");
  Alcotest.(check (option int)) "missing" None (H.find_by_label h "nope")

let test_find_by_tree_number () =
  let h = sample () in
  let t3 = C.tree_number (H.concept h 3) in
  Alcotest.(check (option int)) "found" (Some 3) (H.find_by_tree_number h t3);
  Alcotest.(check (option int)) "missing" None
    (H.find_by_tree_number h (TN.of_string "Z99.123"))

let test_nodes_at_depth () =
  let h = sample () in
  Alcotest.(check (list int)) "depth 0" [ 0 ] (H.nodes_at_depth h 0);
  Alcotest.(check (list int)) "depth 2" [ 2; 3; 5 ] (H.nodes_at_depth h 2);
  Alcotest.(check (list int)) "depth 9" [] (H.nodes_at_depth h 9)

let test_tree_numbers_consistent () =
  let h = sample () in
  for i = 1 to 6 do
    let tn = C.tree_number (H.concept h i) in
    let ptn = C.tree_number (H.concept h (H.parent h i)) in
    Alcotest.(check bool) "parent prefix" true (TN.equal (Option.get (TN.parent tn)) ptn)
  done

let test_build_rejects_bad_parent () =
  Alcotest.(check bool) "forward parent rejected" true
    (try
       ignore (H.of_parents [| -1; 2; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_build_rejects_empty () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (H.of_parents [||]);
       false
     with Invalid_argument _ -> true)

let test_build_rejects_inconsistent_tree_numbers () =
  let mk id label tns = C.make ~id ~label ~tree_number:(TN.of_string tns) in
  let concepts = [| mk 0 "root" ""; mk 1 "a" "A"; mk 2 "b" "B.000" |] in
  Alcotest.(check bool) "inconsistent rejected" true
    (try
       ignore (H.build concepts ~parent:[| -1; 0; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_custom_labels () =
  let h = H.of_parents ~labels:(Printf.sprintf "L%d") [| -1; 0 |] in
  Alcotest.(check string) "label" "L1" (H.label h 1)

let test_single_node () =
  let h = H.of_parents [| -1 |] in
  Alcotest.(check int) "height" 0 (H.height h);
  Alcotest.(check int) "width" 1 (H.max_width h);
  Alcotest.(check int) "subtree" 1 (H.subtree_size h 0)

(* Random-tree structural invariants. *)
let gen_parents =
  QCheck.make
    ~print:(fun a -> String.concat ";" (Array.to_list (Array.map string_of_int a)))
    QCheck.Gen.(
      int_range 1 40 >>= fun n ->
      let rec build i acc =
        if i >= n then return (Array.of_list (List.rev acc))
        else int_range 0 (i - 1) >>= fun p -> build (i + 1) (p :: acc)
      in
      build 1 [ -1 ])

let qcheck_depth_consistent =
  QCheck.Test.make ~name:"depth = parent depth + 1" ~count:200 gen_parents (fun parents ->
      let h = H.of_parents parents in
      let ok = ref true in
      for i = 1 to H.size h - 1 do
        if H.depth h i <> H.depth h (H.parent h i) + 1 then ok := false
      done;
      !ok)

let qcheck_subtree_sizes_sum =
  QCheck.Test.make ~name:"children subtree sizes sum to parent's - 1" ~count:200 gen_parents
    (fun parents ->
      let h = H.of_parents parents in
      let ok = ref true in
      for i = 0 to H.size h - 1 do
        let kids_sum = List.fold_left (fun a c -> a + H.subtree_size h c) 0 (H.children h i) in
        if H.subtree_size h i <> kids_sum + 1 then ok := false
      done;
      !ok)

let qcheck_ancestors_match_is_ancestor =
  QCheck.Test.make ~name:"ancestors list agrees with is_ancestor" ~count:100 gen_parents
    (fun parents ->
      let h = H.of_parents parents in
      let ok = ref true in
      for i = 0 to H.size h - 1 do
        List.iter (fun a -> if not (H.is_ancestor h a i) then ok := false) (H.ancestors h i)
      done;
      !ok)

let () =
  Alcotest.run "hierarchy"
    [
      ( "unit",
        [
          Alcotest.test_case "size and root" `Quick test_size_and_root;
          Alcotest.test_case "children" `Quick test_children;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "is_leaf" `Quick test_is_leaf;
          Alcotest.test_case "subtree size" `Quick test_subtree_size;
          Alcotest.test_case "height/width" `Quick test_height_width;
          Alcotest.test_case "ancestors/path" `Quick test_ancestors_path;
          Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
          Alcotest.test_case "descendants" `Quick test_descendants;
          Alcotest.test_case "iter preorder" `Quick test_iter_subtree_preorder;
          Alcotest.test_case "fold postorder" `Quick test_fold_postorder;
          Alcotest.test_case "find by label" `Quick test_find_by_label;
          Alcotest.test_case "find by tree number" `Quick test_find_by_tree_number;
          Alcotest.test_case "nodes at depth" `Quick test_nodes_at_depth;
          Alcotest.test_case "tree numbers consistent" `Quick test_tree_numbers_consistent;
          Alcotest.test_case "rejects bad parent" `Quick test_build_rejects_bad_parent;
          Alcotest.test_case "rejects empty" `Quick test_build_rejects_empty;
          Alcotest.test_case "rejects inconsistent tree numbers" `Quick
            test_build_rejects_inconsistent_tree_numbers;
          Alcotest.test_case "custom labels" `Quick test_custom_labels;
          Alcotest.test_case "single node" `Quick test_single_node;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_depth_consistent;
          QCheck_alcotest.to_alcotest qcheck_subtree_sizes_sum;
          QCheck_alcotest.to_alcotest qcheck_ancestors_match_is_ancestor;
        ] );
    ]
