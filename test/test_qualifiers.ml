open Bionav_mesh
module Q = Qualifiers

let test_table_shape () =
  Alcotest.(check bool) "non-trivial table" true (Q.count >= 30);
  Alcotest.(check int) "all lists every id" Q.count (List.length (Q.all ()));
  Alcotest.(check (list int)) "dense ids" (List.init Q.count Fun.id) (Q.all ())

let test_roundtrip_names () =
  List.iter
    (fun q ->
      Alcotest.(check (option int))
        (Q.name q) (Some q)
        (Q.find_by_name (Q.name q)))
    (Q.all ())

let test_roundtrip_abbreviations () =
  List.iter
    (fun q ->
      Alcotest.(check (option int))
        (Q.abbreviation q) (Some q)
        (Q.find_by_abbreviation (Q.abbreviation q)))
    (Q.all ())

let test_lookup_normalizes () =
  (* Case-insensitive, surrounding whitespace ignored — the nbib wire
     format spells qualifiers in several capitalizations. *)
  Alcotest.(check (option int)) "upper name" (Q.find_by_name "metabolism")
    (Q.find_by_name "METABOLISM");
  Alcotest.(check (option int)) "padded name" (Q.find_by_name "genetics")
    (Q.find_by_name "  genetics  ");
  Alcotest.(check (option int)) "lower abbrev" (Q.find_by_abbreviation "ME")
    (Q.find_by_abbreviation "me")

let test_names_and_abbreviations_unique () =
  let module S = Set.Make (String) in
  let names = List.map Q.name (Q.all ()) in
  let abbrevs = List.map Q.abbreviation (Q.all ()) in
  Alcotest.(check int) "unique names" Q.count (S.cardinal (S.of_list names));
  Alcotest.(check int) "unique abbreviations" Q.count (S.cardinal (S.of_list abbrevs))

let test_malformed_inputs_rejected () =
  List.iter
    (fun s ->
      Alcotest.(check (option int)) ("name " ^ String.escaped s) None (Q.find_by_name s);
      Alcotest.(check (option int))
        ("abbrev " ^ String.escaped s)
        None
        (Q.find_by_abbreviation s))
    [ ""; " "; "no-such-qualifier"; "metab olism"; "Z9"; "\x00"; "m\xc3\xa9tabolisme" ]

let test_bad_ids_raise () =
  List.iter
    (fun bad ->
      Alcotest.check_raises
        (Printf.sprintf "name %d" bad)
        (Invalid_argument (Printf.sprintf "Qualifiers: bad id %d" bad))
        (fun () -> ignore (Q.name bad)))
    [ -1; Q.count ]

let test_oversized_input_rejected_cheaply () =
  (* The decode-bounds discipline: a pathological candidate is refused by
     length before any lowercasing/trimming allocation happens. *)
  Alcotest.(check bool) "bound sane" true (Q.max_input_length >= 26);
  let big = String.make (Q.max_input_length + 1) 'a' in
  Alcotest.(check (option int)) "oversized name" None (Q.find_by_name big);
  Alcotest.(check (option int)) "oversized abbrev" None (Q.find_by_abbreviation big);
  (* Exactly at the bound is still considered (and simply not found). *)
  let at = String.make Q.max_input_length 'a' in
  Alcotest.(check (option int)) "at-bound name" None (Q.find_by_name at);
  (* A real name padded beyond the bound with whitespace is out of
     contract: the length check runs before trimming. *)
  let padded = "metabolism" ^ String.make Q.max_input_length ' ' in
  Alcotest.(check (option int)) "padded past bound" None (Q.find_by_name padded)

let () =
  Alcotest.run "qualifiers"
    [
      ( "unit",
        [
          Alcotest.test_case "table shape" `Quick test_table_shape;
          Alcotest.test_case "name roundtrip" `Quick test_roundtrip_names;
          Alcotest.test_case "abbreviation roundtrip" `Quick test_roundtrip_abbreviations;
          Alcotest.test_case "lookup normalizes" `Quick test_lookup_normalizes;
          Alcotest.test_case "uniqueness" `Quick test_names_and_abbreviations_unique;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_inputs_rejected;
          Alcotest.test_case "bad ids raise" `Quick test_bad_ids_raise;
          Alcotest.test_case "oversized input" `Quick test_oversized_input_rejected_cheaply;
        ] );
    ]
