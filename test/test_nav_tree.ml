open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database

(* Hierarchy (hierarchy ids):
     0 root
     1 "Biological Phenomena"      (empty)
     2   "Cell Physiology"         {1,2}
     3     "Cell Death"            (empty, lifted)
     4       "Apoptosis"           {3,4}
     5       "Necrosis"            (empty leaf, dropped)
     6   "Cell Growth"             (empty, lifted)
     7     "Cell Proliferation"    {2,5,6}
     8 "Chemicals"                 (empty leaf, dropped)  *)
let labels =
  [|
    "MeSH"; "Biological Phenomena"; "Cell Physiology"; "Cell Death"; "Apoptosis"; "Necrosis";
    "Cell Growth"; "Cell Proliferation"; "Chemicals";
  |]

let hierarchy () = H.of_parents ~labels:(fun i -> labels.(i)) [| -1; 0; 1; 2; 3; 3; 1; 6; 0 |]

let attachments =
  [ (2, Docset.of_list [ 1; 2 ]); (4, Docset.of_list [ 3; 4 ]); (7, Docset.of_list [ 2; 5; 6 ]) ]

let totals = [| 0; 50; 10; 20; 30; 5; 40; 25; 60 |]

let build () =
  Nav_tree.build ~hierarchy:(hierarchy ()) ~attachments ~total_count:(fun c -> totals.(c))

let test_maximum_embedding_shape () =
  let t = build () in
  (* Kept: root, Cell Physiology, Apoptosis (lifted under Cell Physiology),
     Cell Proliferation (lifted under root? no — under Biological Phenomena
     which is empty, itself lifted to root). *)
  Alcotest.(check int) "size" 4 (Nav_tree.size t);
  let labels_found = List.init 4 (Nav_tree.label t) in
  Alcotest.(check (list string)) "preorder labels"
    [ "MeSH"; "Cell Physiology"; "Apoptosis"; "Cell Proliferation" ]
    labels_found

let test_embedding_preserves_ancestry () =
  let t = build () in
  (* Apoptosis was a great-grandchild of Biological Phenomena via Cell Death;
     after embedding its parent is Cell Physiology (nearest kept ancestor). *)
  let apoptosis = Option.get (Nav_tree.node_of_concept t 4) in
  let physiology = Option.get (Nav_tree.node_of_concept t 2) in
  Alcotest.(check int) "lifted parent" physiology (Nav_tree.parent t apoptosis);
  let proliferation = Option.get (Nav_tree.node_of_concept t 7) in
  Alcotest.(check int) "lifted to root" 0 (Nav_tree.parent t proliferation)

let test_empty_nodes_dropped () =
  let t = build () in
  List.iter
    (fun c ->
      Alcotest.(check (option int)) (Printf.sprintf "concept %d dropped" c) None
        (Nav_tree.node_of_concept t c))
    [ 1; 3; 5; 6; 8 ]

let test_counts () =
  let t = build () in
  Alcotest.(check int) "distinct results" 6 (Nav_tree.distinct_results t);
  Alcotest.(check int) "attached with duplicates" 7 (Nav_tree.total_attached t);
  let physiology = Option.get (Nav_tree.node_of_concept t 2) in
  Alcotest.(check int) "L" 2 (Nav_tree.result_count t physiology);
  Alcotest.(check int) "LT" 10 (Nav_tree.total t physiology);
  (* Subtree distinct of Cell Physiology = {1,2} u {3,4} = 4. *)
  Alcotest.(check int) "subtree distinct" 4 (Nav_tree.subtree_distinct t physiology)

let test_root_subtree_distinct_is_result_size () =
  let t = build () in
  Alcotest.(check int) "root covers all" (Nav_tree.distinct_results t)
    (Nav_tree.subtree_distinct t 0)

let test_height_width () =
  let t = build () in
  Alcotest.(check int) "height" 2 (Nav_tree.height t);
  Alcotest.(check int) "width" 2 (Nav_tree.max_width t)

let test_in_subtree () =
  let t = build () in
  let physiology = Option.get (Nav_tree.node_of_concept t 2) in
  let apoptosis = Option.get (Nav_tree.node_of_concept t 4) in
  let proliferation = Option.get (Nav_tree.node_of_concept t 7) in
  Alcotest.(check bool) "contains descendant" true
    (Nav_tree.in_subtree t ~root:physiology apoptosis);
  Alcotest.(check bool) "self" true (Nav_tree.in_subtree t ~root:physiology physiology);
  Alcotest.(check bool) "not sibling branch" false
    (Nav_tree.in_subtree t ~root:physiology proliferation);
  Alcotest.(check bool) "root contains all" true (Nav_tree.in_subtree t ~root:0 apoptosis)

let test_comp_tree_of_full () =
  let t = build () in
  let comp, map = Nav_tree.comp_tree_of t ~root:0 ~members:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "size" 4 (Comp_tree.size comp);
  Alcotest.(check (array int)) "map" [| 0; 1; 2; 3 |] map;
  Alcotest.(check int) "tags are nav ids" 2 (Comp_tree.tag comp 2);
  Alcotest.(check int) "parents preserved" 1 (Comp_tree.parent comp 2)

let test_comp_tree_of_partial () =
  let t = build () in
  let physiology = Option.get (Nav_tree.node_of_concept t 2) in
  let apoptosis = Option.get (Nav_tree.node_of_concept t 4) in
  let comp, _ = Nav_tree.comp_tree_of t ~root:physiology ~members:[ physiology; apoptosis ] in
  Alcotest.(check int) "two nodes" 2 (Comp_tree.size comp);
  Alcotest.(check string) "root label" "Cell Physiology" (Comp_tree.label comp 0)

let test_comp_tree_of_rejects_disconnected () =
  let t = build () in
  let apoptosis = Option.get (Nav_tree.node_of_concept t 4) in
  Alcotest.(check bool) "disconnected" true
    (try
       ignore (Nav_tree.comp_tree_of t ~root:0 ~members:[ 0; apoptosis ]);
       false
     with Invalid_argument _ -> true)

let test_build_rejects_bad_attachment () =
  let h = hierarchy () in
  Alcotest.(check bool) "unknown concept" true
    (try
       ignore
         (Nav_tree.build ~hierarchy:h
            ~attachments:[ (99, Docset.singleton 1) ]
            ~total_count:(fun _ -> 10));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate attachment" true
    (try
       ignore
         (Nav_tree.build ~hierarchy:h
            ~attachments:[ (2, Docset.singleton 1); (2, Docset.singleton 2) ]
            ~total_count:(fun _ -> 10));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "total < attached" true
    (try
       ignore
         (Nav_tree.build ~hierarchy:h
            ~attachments:[ (2, Docset.of_list [ 1; 2; 3 ]) ]
            ~total_count:(fun _ -> 1));
       false
     with Invalid_argument _ -> true)

let test_root_only_tree () =
  let h = hierarchy () in
  let t = Nav_tree.build ~hierarchy:h ~attachments:[] ~total_count:(fun _ -> 0) in
  Alcotest.(check int) "just the root" 1 (Nav_tree.size t);
  Alcotest.(check int) "no results" 0 (Nav_tree.distinct_results t)

(* Integration: of_database consistency on a generated corpus. *)
let test_of_database_consistency () =
  let h = S.generate ~params:S.small_params ~seed:61 () in
  let m = G.generate ~params:{ G.small_params with G.n_citations = 250 } ~seed:62 h in
  let db = DB.of_medline m in
  let result = Docset.of_list (List.init 40 (fun i -> i * 3)) in
  let t = Nav_tree.of_database db result in
  (* Every nav node's direct results are a subset of the query result, and
     all nodes except the root are non-empty. *)
  for node = 1 to Nav_tree.size t - 1 do
    let l = Nav_tree.results t node in
    Alcotest.(check bool) "non-empty" true (not (Docset.is_empty l));
    Alcotest.(check bool) "subset of result" true (Docset.subset l result);
    Alcotest.(check bool) "LT >= L" true
      (Nav_tree.total t node >= Nav_tree.result_count t node)
  done;
  Alcotest.(check int) "root distinct = |result|" (Docset.cardinal result)
    (Nav_tree.distinct_results t);
  (* Parent relationships respect hierarchy ancestry. *)
  for node = 1 to Nav_tree.size t - 1 do
    let p = Nav_tree.parent t node in
    if p <> 0 then
      Alcotest.(check bool) "parent concept is ancestor" true
        (H.is_ancestor h (Nav_tree.concept_id t p) (Nav_tree.concept_id t node))
  done

let test_of_database_distinct_monotone () =
  let h = S.generate ~params:S.small_params ~seed:63 () in
  let m = G.generate ~params:{ G.small_params with G.n_citations = 250 } ~seed:64 h in
  let db = DB.of_medline m in
  let t = Nav_tree.of_database db (Docset.of_list (List.init 30 Fun.id)) in
  for node = 1 to Nav_tree.size t - 1 do
    Alcotest.(check bool) "child subtree counts bounded by parent" true
      (Nav_tree.subtree_distinct t node
      <= Nav_tree.subtree_distinct t (Nav_tree.parent t node))
  done

let () =
  Alcotest.run "nav_tree"
    [
      ( "embedding",
        [
          Alcotest.test_case "shape" `Quick test_maximum_embedding_shape;
          Alcotest.test_case "ancestry preserved" `Quick test_embedding_preserves_ancestry;
          Alcotest.test_case "empty dropped" `Quick test_empty_nodes_dropped;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "root distinct" `Quick test_root_subtree_distinct_is_result_size;
          Alcotest.test_case "height/width" `Quick test_height_width;
          Alcotest.test_case "root-only" `Quick test_root_only_tree;
        ] );
      ( "queries",
        [
          Alcotest.test_case "in_subtree" `Quick test_in_subtree;
          Alcotest.test_case "comp_tree full" `Quick test_comp_tree_of_full;
          Alcotest.test_case "comp_tree partial" `Quick test_comp_tree_of_partial;
          Alcotest.test_case "comp_tree disconnected" `Quick test_comp_tree_of_rejects_disconnected;
          Alcotest.test_case "rejects bad attachments" `Quick test_build_rejects_bad_attachment;
        ] );
      ( "integration",
        [
          Alcotest.test_case "of_database consistency" `Quick test_of_database_consistency;
          Alcotest.test_case "distinct monotone" `Quick test_of_database_distinct_monotone;
        ] );
    ]
