open Bionav_util
open Bionav_core

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let nav () =
  let h =
    Bionav_mesh.Hierarchy.of_parents
      ~labels:(fun i -> [| "root"; "alpha \"x\""; "beta"; "gamma" |].(i))
      [| -1; 0; 1; 0 |]
  in
  Nav_tree.build ~hierarchy:h
    ~attachments:
      [ (1, Docset.of_list [ 1; 2 ]); (2, Docset.of_list [ 2; 3 ]); (3, Docset.of_list [ 4 ]) ]
    ~total_count:(fun _ -> 50)

let test_nav_tree_dot () =
  let d = Dot.nav_tree (nav ()) in
  Alcotest.(check bool) "digraph" true (contains ~sub:"digraph" d);
  Alcotest.(check bool) "edges" true (contains ~sub:"n0 -> n1" d);
  Alcotest.(check bool) "counts" true (contains ~sub:"(3)" d);
  Alcotest.(check bool) "quotes escaped" true (contains ~sub:"alpha \\\"x\\\"" d)

let test_nav_tree_truncation () =
  let d = Dot.nav_tree ~max_nodes:2 (nav ()) in
  Alcotest.(check bool) "ellipsis marker" true (contains ~sub:"more..." d);
  Alcotest.(check bool) "dashed edge" true (contains ~sub:"style=dashed" d)

let test_active_tree_dot () =
  let active = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut active ~root:0 ~cut_children:[ 1 ]);
  let d = Dot.active_tree active in
  Alcotest.(check bool) "visible edge" true (contains ~sub:"n0 -> n1" d);
  (* Hidden node 3 must not appear as a node statement. *)
  Alcotest.(check bool) "hidden absent" false (contains ~sub:"n3 [label" d);
  Alcotest.(check bool) "expandable bold" true (contains ~sub:"style=bold" d)

let test_component_dot () =
  let comp, _ = Nav_tree.comp_tree_of (nav ()) ~root:0 ~members:[ 0; 1; 2; 3 ] in
  let d = Dot.component comp in
  Alcotest.(check bool) "L/LT labels" true (contains ~sub:"L=2 LT=50" d);
  Alcotest.(check bool) "edges" true (contains ~sub:"n1 -> n2" d)

let () =
  Alcotest.run "dot"
    [
      ( "unit",
        [
          Alcotest.test_case "nav tree" `Quick test_nav_tree_dot;
          Alcotest.test_case "truncation" `Quick test_nav_tree_truncation;
          Alcotest.test_case "active tree" `Quick test_active_tree_dot;
          Alcotest.test_case "component" `Quick test_component_dot;
        ] );
    ]
