open Bionav_util
open Bionav_core

(* Nav tree fixture (nav ids):
     0 root {}
     1   a {1,2}
     2     b {2,3}
     3     c {4}
     4   d {5,6}
     5     e {6,7}        *)
let nav () =
  let h =
    Bionav_mesh.Hierarchy.of_parents
      ~labels:(fun i -> [| "MeSH"; "a"; "b"; "c"; "d"; "e" |].(i))
      [| -1; 0; 1; 1; 0; 4 |]
  in
  let attachments =
    [
      (1, Docset.of_list [ 1; 2 ]);
      (2, Docset.of_list [ 2; 3 ]);
      (3, Docset.of_list [ 4 ]);
      (4, Docset.of_list [ 5; 6 ]);
      (5, Docset.of_list [ 6; 7 ]);
    ]
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 100)

let test_initial_state () =
  let t = Active_tree.create (nav ()) in
  Alcotest.(check (list int)) "only root visible" [ 0 ] (Active_tree.visible t);
  Alcotest.(check (list int)) "root component holds all" [ 0; 1; 2; 3; 4; 5 ]
    (Active_tree.component t 0);
  Alcotest.(check int) "root distinct" 7 (Active_tree.component_distinct t 0);
  Alcotest.(check bool) "expandable" true (Active_tree.is_expandable t 0);
  for i = 0 to 5 do
    Alcotest.(check int) "all in root component" 0 (Active_tree.component_root_of t i)
  done

let test_apply_cut_splits () =
  let t = Active_tree.create (nav ()) in
  let revealed = Active_tree.apply_cut t ~root:0 ~cut_children:[ 1; 5 ] in
  Alcotest.(check (list int)) "revealed" [ 1; 5 ] revealed;
  Alcotest.(check (list int)) "visible" [ 0; 1; 5 ] (Active_tree.visible t);
  Alcotest.(check (list int)) "component of 1" [ 1; 2; 3 ] (Active_tree.component t 1);
  Alcotest.(check (list int)) "component of 5" [ 5 ] (Active_tree.component t 5);
  Alcotest.(check (list int)) "upper keeps rest" [ 0; 4 ] (Active_tree.component t 0);
  Alcotest.(check int) "4 now routed to root comp" 0 (Active_tree.component_root_of t 4);
  Alcotest.(check int) "2 routed to 1" 1 (Active_tree.component_root_of t 2)

let test_counts_shrink_after_cut () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  (* Upper component = {0, 4, 5}: results {5,6} u {6,7} = 3 distinct. *)
  Alcotest.(check int) "upper count" 3 (Active_tree.component_distinct t 0);
  Alcotest.(check int) "lower count" 4 (Active_tree.component_distinct t 1)

let test_expandable_flags () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 3; 5 ]);
  Alcotest.(check bool) "singleton not expandable" false (Active_tree.is_expandable t 3);
  Alcotest.(check bool) "upper expandable" true (Active_tree.is_expandable t 0)

let test_nested_cuts () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  let revealed = Active_tree.apply_cut t ~root:1 ~cut_children:[ 2; 3 ] in
  Alcotest.(check (list int)) "revealed leaves" [ 2; 3 ] revealed;
  Alcotest.(check (list int)) "1 now alone" [ 1 ] (Active_tree.component t 1);
  Alcotest.(check bool) "1 no longer expandable" false (Active_tree.is_expandable t 1)

let test_cut_skipping_levels () =
  (* EdgeCuts may reveal descendants that are not children (paper Fig. 3). *)
  let t = Active_tree.create (nav ()) in
  let revealed = Active_tree.apply_cut t ~root:0 ~cut_children:[ 2; 5 ] in
  Alcotest.(check (list int)) "grandchildren revealed" [ 2; 5 ] revealed;
  Alcotest.(check (list int)) "upper keeps intermediate nodes" [ 0; 1; 3; 4 ]
    (Active_tree.component t 0)

let test_visible_parent_embedding () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 2; 5 ]);
  (* 2's nav parent (1) is invisible; its visible parent is the root. *)
  Alcotest.(check int) "lifted to root" 0 (Active_tree.visible_parent t 2);
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  Alcotest.(check int) "now under 1" 1 (Active_tree.visible_parent t 2)

let test_backtrack () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  ignore (Active_tree.apply_cut t ~root:1 ~cut_children:[ 2 ]);
  Alcotest.(check bool) "undo inner" true (Active_tree.backtrack t);
  Alcotest.(check (list int)) "inner restored" [ 1; 2; 3 ] (Active_tree.component t 1);
  Alcotest.(check (list int)) "visible" [ 0; 1 ] (Active_tree.visible t);
  Alcotest.(check bool) "undo outer" true (Active_tree.backtrack t);
  Alcotest.(check (list int)) "initial restored" [ 0; 1; 2; 3; 4; 5 ]
    (Active_tree.component t 0);
  Alcotest.(check bool) "nothing left" false (Active_tree.backtrack t)

let rejects f = try ignore (f ()); false with Invalid_argument _ -> true

let test_cut_validation () =
  let t = Active_tree.create (nav ()) in
  Alcotest.(check bool) "empty cut" true
    (rejects (fun () -> Active_tree.apply_cut t ~root:0 ~cut_children:[]));
  Alcotest.(check bool) "cut at root" true
    (rejects (fun () -> Active_tree.apply_cut t ~root:0 ~cut_children:[ 0 ]));
  Alcotest.(check bool) "ancestor pair" true
    (rejects (fun () -> Active_tree.apply_cut t ~root:0 ~cut_children:[ 1; 2 ]));
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  Alcotest.(check bool) "outside component" true
    (rejects (fun () -> Active_tree.apply_cut t ~root:0 ~cut_children:[ 2 ]));
  Alcotest.(check bool) "invisible root" true
    (rejects (fun () -> Active_tree.apply_cut t ~root:4 ~cut_children:[ 5 ]))

let test_expand_static () =
  let t = Active_tree.create (nav ()) in
  let revealed = Active_tree.expand_static t 0 in
  Alcotest.(check (list int)) "all children" [ 1; 4 ] revealed;
  Alcotest.(check (list int)) "upper is singleton root" [ 0 ] (Active_tree.component t 0);
  let revealed2 = Active_tree.expand_static t 1 in
  Alcotest.(check (list int)) "children of 1" [ 2; 3 ] revealed2;
  (* Leaves reveal nothing. *)
  Alcotest.(check (list int)) "leaf static expand" [] (Active_tree.expand_static t 2)

let test_comp_tree_extraction () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 4 ]);
  let comp, map = Active_tree.comp_tree t 4 in
  Alcotest.(check int) "two nodes" 2 (Comp_tree.size comp);
  Alcotest.(check (array int)) "map" [| 4; 5 |] map;
  Alcotest.(check string) "label" "d" (Comp_tree.label comp 0)

let test_render_shows_visible () =
  let t = Active_tree.create (nav ()) in
  ignore (Active_tree.apply_cut t ~root:0 ~cut_children:[ 1 ]);
  let s = Active_tree.render t in
  Alcotest.(check bool) "root line" true (String.length s > 0);
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  Alcotest.(check int) "two visible nodes" 2 (List.length lines)

(* Property: any sequence of random valid cuts keeps components a partition
   of the nodes, each component connected under its root. *)
let qcheck_random_cut_sequences =
  QCheck.Test.make ~name:"cut sequences preserve partition invariants" ~count:150
    QCheck.(pair (int_range 0 5000) (int_range 1 12))
    (fun (seed, steps) ->
      let rng = Rng.create seed in
      let t = Active_tree.create (nav ()) in
      let ok = ref true in
      for _ = 1 to steps do
        let expandables = List.filter (Active_tree.is_expandable t) (Active_tree.visible t) in
        match expandables with
        | [] -> ()
        | _ ->
            let root = Rng.choice_list rng expandables in
            let members = List.filter (fun m -> m <> root) (Active_tree.component t root) in
            (* Pick one random member; it is a valid singleton cut. *)
            let cut = [ Rng.choice_list rng members ] in
            ignore (Active_tree.apply_cut t ~root ~cut_children:cut)
      done;
      (* Invariant: components partition all nodes. *)
      let all =
        List.concat_map (fun r -> Active_tree.component t r) (Active_tree.visible t)
      in
      if List.sort Int.compare all <> [ 0; 1; 2; 3; 4; 5 ] then ok := false;
      (* Invariant: component_root_of agrees with membership. *)
      List.iter
        (fun r ->
          List.iter
            (fun m -> if Active_tree.component_root_of t m <> r then ok := false)
            (Active_tree.component t r))
        (Active_tree.visible t);
      !ok)

(* Heuristic-driven sessions on random navigation trees keep the partition
   invariants too (cuts may skip levels, unlike the singleton cuts above). *)
let qcheck_heuristic_sessions =
  QCheck.Test.make ~name:"heuristic cut sequences preserve invariants" ~count:60
    QCheck.(pair (int_range 4 40) (int_range 0 5_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
      let h = Bionav_mesh.Hierarchy.of_parents parent in
      let attachments =
        List.init (n - 1) (fun i ->
            (i + 1, Docset.of_list (List.init (1 + Rng.int rng 10) (fun j -> (i * 7) + j))))
      in
      let nav_tree = Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 500) in
      let t = Active_tree.create nav_tree in
      let ok = ref true in
      let rec loop guard =
        if guard = 0 then ()
        else
          match List.filter (Active_tree.is_expandable t) (Active_tree.visible t) with
          | [] -> ()
          | root :: _ ->
              let comp, _ = Active_tree.comp_tree t root in
              let report = Bionav_core.Heuristic.best_cut comp in
              let cut =
                List.map (Comp_tree.tag comp) report.Bionav_core.Heuristic.cut_children
              in
              ignore (Active_tree.apply_cut t ~root ~cut_children:cut);
              let all =
                List.concat_map (Active_tree.component t) (Active_tree.visible t)
              in
              if List.sort Int.compare all <> List.init (Nav_tree.size nav_tree) Fun.id then
                ok := false;
              loop (guard - 1)
      in
      loop 30;
      !ok)

let () =
  Alcotest.run "active_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "apply_cut splits" `Quick test_apply_cut_splits;
          Alcotest.test_case "counts shrink" `Quick test_counts_shrink_after_cut;
          Alcotest.test_case "expandable flags" `Quick test_expandable_flags;
          Alcotest.test_case "nested cuts" `Quick test_nested_cuts;
          Alcotest.test_case "level-skipping cuts" `Quick test_cut_skipping_levels;
          Alcotest.test_case "visible parent" `Quick test_visible_parent_embedding;
          Alcotest.test_case "backtrack" `Quick test_backtrack;
          Alcotest.test_case "cut validation" `Quick test_cut_validation;
          Alcotest.test_case "static expand" `Quick test_expand_static;
          Alcotest.test_case "comp tree extraction" `Quick test_comp_tree_extraction;
          Alcotest.test_case "render" `Quick test_render_shows_visible;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_random_cut_sequences;
          QCheck_alcotest.to_alcotest qcheck_heuristic_sessions;
        ] );
    ]
