open Bionav_util

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_counter_basics () =
  let c = Metrics.counter "test_counter_basics" in
  Alcotest.(check int) "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "accumulates" 5 (Metrics.value c);
  Metrics.incr ~by:0 c;
  Alcotest.(check int) "by:0 is a no-op" 5 (Metrics.value c)

let test_counter_is_shared_by_name () =
  let a = Metrics.counter "test_counter_shared" in
  let b = Metrics.counter "test_counter_shared" in
  Metrics.incr a;
  Alcotest.(check int) "same underlying cell" 1 (Metrics.value b)

let test_counter_rejects_negative () =
  let c = Metrics.counter "test_counter_negative" in
  Alcotest.(check bool) "negative by" true
    (try
       Metrics.incr ~by:(-1) c;
       false
     with Invalid_argument _ -> true)

let test_gauge () =
  let g = Metrics.gauge "test_gauge" in
  Alcotest.(check (float 0.)) "starts at zero" 0. (Metrics.gauge_value g);
  Metrics.set g 12.5;
  Alcotest.(check (float 0.)) "set" 12.5 (Metrics.gauge_value g);
  Metrics.set g 3.;
  Alcotest.(check (float 0.)) "overwrite" 3. (Metrics.gauge_value g)

let test_bad_names_rejected () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "name %S" name) true
        (try
           ignore (Metrics.counter name);
           false
         with Invalid_argument _ -> true))
    [ ""; "has space"; "has\"quote"; "has{brace"; "has}brace"; "has\nnewline" ]

let test_kind_clash_rejected () =
  ignore (Metrics.counter "test_kind_clash");
  Alcotest.(check bool) "gauge over counter" true
    (try
       ignore (Metrics.gauge "test_kind_clash");
       false
     with Invalid_argument _ -> true)

(* Percentiles on a known distribution: observations 1..100 with bucket
   bounds 10, 20, ..., 100 put exactly 10 observations in each bucket, so
   linear interpolation recovers pN = N exactly. *)
let known_histogram () =
  let h =
    Metrics.histogram
      ~buckets:(Array.init 10 (fun i -> float_of_int ((i + 1) * 10)))
      "test_hist_known"
  in
  for v = 1 to 100 do
    Metrics.observe h (float_of_int v)
  done;
  h

let test_histogram_percentiles () =
  let h = known_histogram () in
  Alcotest.(check int) "count" 100 (Metrics.count h);
  Alcotest.(check (float 1e-9)) "sum" 5050. (Metrics.sum h);
  Alcotest.(check (float 1e-9)) "p50" 50. (Metrics.percentile h 50.);
  Alcotest.(check (float 1e-9)) "p95" 95. (Metrics.percentile h 95.);
  Alcotest.(check (float 1e-9)) "p99" 99. (Metrics.percentile h 99.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Metrics.percentile h 100.)

let test_histogram_empty () =
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] "test_hist_empty" in
  Alcotest.(check int) "count" 0 (Metrics.count h);
  Alcotest.(check (float 0.)) "sum" 0. (Metrics.sum h);
  Alcotest.(check (float 0.)) "p50 of empty" 0. (Metrics.percentile h 50.)

let test_histogram_overflow_bucket () =
  let h = Metrics.histogram ~buckets:[| 10. |] "test_hist_overflow" in
  Metrics.observe h 500.;
  Metrics.observe h 500.;
  (* Both land beyond the last bound; the overflow bucket interpolates up
     to the observed maximum. *)
  Alcotest.(check (float 1e-9)) "p100 = max" 500. (Metrics.percentile h 100.);
  Alcotest.(check bool) "p50 between bound and max" true
    (let p = Metrics.percentile h 50. in
     p >= 10. && p <= 500.)

let test_histogram_rejects_bad_buckets () =
  List.iter
    (fun (name, buckets) ->
      Alcotest.(check bool) name true
        (try
           ignore (Metrics.histogram ~buckets name);
           false
         with Invalid_argument _ -> true))
    [ ("test_hist_unsorted", [| 2.; 1. |]); ("test_hist_nobuckets", [||]) ]

let test_dump_format () =
  let c = Metrics.counter "test_dump_counter" in
  Metrics.incr ~by:7 c;
  let g = Metrics.gauge "test_dump_gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram ~buckets:[| 1.; 10. |] "test_dump_hist" in
  Metrics.observe h 0.5;
  let out = Metrics.dump () in
  Alcotest.(check bool) "counter line" true (contains ~sub:"test_dump_counter 7" out);
  Alcotest.(check bool) "gauge line" true (contains ~sub:"test_dump_gauge 2.5" out);
  Alcotest.(check bool) "hist count" true (contains ~sub:"test_dump_hist_count 1" out);
  Alcotest.(check bool) "hist sum" true (contains ~sub:"test_dump_hist_sum 0.5" out);
  Alcotest.(check bool) "hist quantile" true
    (contains ~sub:"test_dump_hist{quantile=\"0.5\"}" out);
  (* Sorted by name: the counter line precedes the gauge line. *)
  let idx sub =
    let n = String.length out and m = String.length sub in
    let rec go i = if i + m > n then -1 else if String.sub out i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "sorted" true
    (idx "test_dump_counter" >= 0 && idx "test_dump_counter" < idx "test_dump_gauge")

let test_reset () =
  let c = Metrics.counter "test_reset_counter" in
  let h = Metrics.histogram ~buckets:[| 1. |] "test_reset_hist" in
  Metrics.incr ~by:3 c;
  Metrics.observe h 0.5;
  Metrics.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Metrics.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.count h);
  Metrics.incr c;
  Alcotest.(check int) "still usable" 1 (Metrics.value c)

(* --- multi-domain exactness ------------------------------------------- *)
(* Joining a domain is a happens-before edge, so after every writer is
   joined the aggregated values must be exact, not approximate. *)

let test_counter_cross_domain_exact () =
  let c = Metrics.counter "test_domains_counter" in
  let domains = 4 and per_domain = 10_000 in
  let workers =
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "no lost increment" (domains * per_domain) (Metrics.value c)

let test_histogram_cross_domain_exact () =
  let h =
    Metrics.histogram ~buckets:(Array.init 10 (fun i -> float_of_int ((i + 1) * 10)))
      "test_domains_hist"
  in
  let domains = 4 and per_domain = 2_500 in
  let workers =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for v = 1 to per_domain do
              Metrics.observe h (float_of_int (((d + v) mod 100) + 1))
            done))
  in
  Array.iter Domain.join workers;
  Alcotest.(check int) "every observation counted" (domains * per_domain) (Metrics.count h);
  Alcotest.(check bool) "percentiles aggregate across shards" true
    (let p = Metrics.percentile h 50. in
     p > 0. && p <= 100.);
  Metrics.reset ();
  Alcotest.(check int) "reset clears every domain's shard" 0 (Metrics.count h)

(* --- navigation-space metrics: exactness through the engine ------------- *)

(* The refinement counter, depth gauge and per-dimension derivation
   histograms must count exactly: one increment per frame push, the gauge
   tracking the live stack depth, one derivation observation per {e cold}
   derive (revisits come from the nav cache and must not observe). *)
let test_navigation_space_metrics_exact () =
  Metrics.reset ();
  let module S = Bionav_mesh.Synthetic in
  let module G = Bionav_corpus.Generator in
  let module Engine = Bionav_engine.Engine in
  let module Nav_tree = Bionav_core.Nav_tree in
  let h = S.generate ~params:S.small_params ~seed:411 () in
  let deep =
    List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
      (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
  in
  let params =
    {
      G.small_params with
      G.n_citations = 300;
      seeded_groups =
        [
          {
            G.tag = Some "glioma";
            cluster = [ List.nth deep 0; List.nth deep 5 ];
            count = 40;
            topics_per_citation = (1, 2);
          };
        ];
    }
  in
  let m = G.generate ~params ~seed:412 h in
  let engine =
    Engine.create ~database:(Bionav_store.Database.of_medline m)
      ~eutils:(Bionav_search.Eutils.create m) ()
  in
  let refinements = Metrics.counter "bionav_refinements_total" in
  let depth_gauge = Metrics.gauge "bionav_refine_depth" in
  let dh = Metrics.histogram "bionav_space_derivation_ms_descriptor" in
  let qh = Metrics.histogram "bionav_space_derivation_ms_qualifier" in
  let r0 = Metrics.value refinements in
  let d0 = Metrics.count dh and q0 = Metrics.count qh in
  match Engine.search engine "glioma" with
  | Ok Engine.No_results | Error _ -> Alcotest.fail "seeded query found nothing"
  | Ok (Engine.Session s) ->
      let root () = Nav_tree.root (Engine.session_nav s) in
      (* The plain search derives nothing through Nav_space. *)
      Alcotest.(check int) "search derives no space" d0 (Metrics.count dh);
      let node =
        match Engine.expand s (root ()) with
        | n :: _ -> n
        | [] -> Alcotest.fail "root expand revealed nothing"
      in
      ignore (Engine.refine s node : int);
      Alcotest.(check int) "one refinement counted" (r0 + 1) (Metrics.value refinements);
      Alcotest.(check (float 0.)) "depth gauge 1" 1. (Metrics.gauge_value depth_gauge);
      Alcotest.(check int) "one descriptor derivation" (d0 + 1) (Metrics.count dh);
      ignore (Engine.facet s : int);
      Alcotest.(check int) "facet counted too" (r0 + 2) (Metrics.value refinements);
      Alcotest.(check (float 0.)) "depth gauge 2" 2. (Metrics.gauge_value depth_gauge);
      Alcotest.(check int) "one qualifier derivation" (q0 + 1) (Metrics.count qh);
      ignore (Engine.unrefine s : bool);
      ignore (Engine.unrefine s : bool);
      Alcotest.(check (float 0.)) "depth gauge back to 0" 0.
        (Metrics.gauge_value depth_gauge);
      (* Revisiting the identical refinement re-counts the action but is
         served from the nav cache: no new derivation observation. *)
      ignore (Engine.refine s node : int);
      Alcotest.(check int) "revisit counted" (r0 + 3) (Metrics.value refinements);
      Alcotest.(check int) "revisit not re-derived" (d0 + 1) (Metrics.count dh);
      (* The whole family is on the dump surface (/metrics, --metrics). *)
      let out = Engine.metrics_text engine in
      List.iter
        (fun sub -> Alcotest.(check bool) sub true (contains ~sub out))
        [
          "bionav_refinements_total 3";
          "bionav_refine_depth 1";
          "bionav_space_derivation_ms_descriptor_count 1";
          "bionav_space_derivation_ms_qualifier_count 1";
        ]

let () =
  Alcotest.run "metrics"
    [
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "shared by name" `Quick test_counter_is_shared_by_name;
          Alcotest.test_case "rejects negative" `Quick test_counter_rejects_negative;
        ] );
      ( "gauges", [ Alcotest.test_case "set/get" `Quick test_gauge ] );
      ( "registry",
        [
          Alcotest.test_case "bad names" `Quick test_bad_names_rejected;
          Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "known percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "overflow bucket" `Quick test_histogram_overflow_bucket;
          Alcotest.test_case "bad buckets" `Quick test_histogram_rejects_bad_buckets;
        ] );
      ( "dump",
        [
          Alcotest.test_case "format" `Quick test_dump_format;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "domains",
        [
          Alcotest.test_case "counter exact across domains" `Quick
            test_counter_cross_domain_exact;
          Alcotest.test_case "histogram exact across domains" `Quick
            test_histogram_cross_domain_exact;
        ] );
      ( "spaces",
        [
          Alcotest.test_case "navigation-space instruments exact" `Quick
            test_navigation_space_metrics_exact;
        ] );
    ]
