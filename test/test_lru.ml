open Bionav_util

let test_basic_add_find () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "miss" None (Lru.find c "z");
  Alcotest.(check int) "length" 2 (Lru.length c);
  Alcotest.(check int) "capacity" 3 (Lru.capacity c)

let test_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  ignore (Lru.find c "a");
  (* "b" is now least recently used. *)
  Lru.add c "c" 3;
  Alcotest.(check bool) "a kept" true (Lru.mem c "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check bool) "c present" true (Lru.mem c "c")

let test_replace_does_not_evict () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "a" 10;
  Alcotest.(check int) "still two" 2 (Lru.length c);
  Alcotest.(check (option int)) "updated" (Some 10) (Lru.find c "a");
  Alcotest.(check bool) "b kept" true (Lru.mem c "b")

let test_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "x";
  Lru.add c 2 "y";
  Alcotest.(check bool) "first evicted" false (Lru.mem c 1);
  Alcotest.(check (option string)) "second present" (Some "y") (Lru.find c 2)

let test_reinsert_lru_head_refreshes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* "a" is the current LRU victim; re-inserting it must refresh its
     recency, shifting the victim role to "b". *)
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check (option int)) "a survives with new value" (Some 10) (Lru.find c "a");
  Alcotest.(check bool) "c present" true (Lru.mem c "c")

let test_capacity_one_churn () =
  let c = Lru.create ~capacity:1 in
  Lru.add c "a" 1;
  Lru.add c "a" 2;
  Alcotest.(check int) "replace at capacity does not evict" 0 (Lru.evictions c);
  Alcotest.(check (option int)) "replaced" (Some 2) (Lru.find c "a");
  Lru.add c "b" 3;
  Alcotest.(check int) "new key evicts" 1 (Lru.evictions c);
  Alcotest.(check bool) "old gone" false (Lru.mem c "a");
  Alcotest.(check (option int)) "new present" (Some 3) (Lru.find c "b")

let test_peek_no_side_effects () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "peek hit" (Some 1) (Lru.peek c "a");
  Alcotest.(check (option int)) "peek miss" None (Lru.peek c "z");
  Alcotest.(check int) "no hits recorded" 0 (Lru.hits c);
  Alcotest.(check int) "no misses recorded" 0 (Lru.misses c);
  (* No recency refresh either: "a" must still be the eviction victim. *)
  Lru.add c "c" 3;
  Alcotest.(check bool) "a still evicted first" false (Lru.mem c "a")

let test_reset_counters () =
  let c = Lru.create ~capacity:1 in
  Lru.add c "a" 1;
  ignore (Lru.find c "a");
  ignore (Lru.find c "z");
  Lru.add c "b" 2;
  Alcotest.(check bool) "activity recorded" true
    (Lru.hits c > 0 && Lru.misses c > 0 && Lru.evictions c > 0);
  Lru.reset_counters c;
  Alcotest.(check int) "hits zeroed" 0 (Lru.hits c);
  Alcotest.(check int) "misses zeroed" 0 (Lru.misses c);
  Alcotest.(check int) "evictions zeroed" 0 (Lru.evictions c);
  Alcotest.(check int) "entries untouched" 1 (Lru.length c);
  Alcotest.(check (option int)) "still served" (Some 2) (Lru.find c "b")

let test_hits_misses () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  ignore (Lru.find c "a");
  ignore (Lru.find c "a");
  ignore (Lru.find c "b");
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c)

let test_find_or_add () =
  let c = Lru.create ~capacity:2 in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  Alcotest.(check int) "computes once" 42 (Lru.find_or_add c "k" compute);
  Alcotest.(check int) "cached" 42 (Lru.find_or_add c "k" compute);
  Alcotest.(check int) "single call" 1 !calls

let test_remove_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.remove c "a";
  Alcotest.(check bool) "removed" false (Lru.mem c "a");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c)

let test_rejects_zero_capacity () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Lru.create ~capacity:0 : (int, int) Lru.t);
       false
     with Invalid_argument _ -> true)

(* Mutating the cache from inside [fold] would invalidate the hashtable
   walk; the guard turns that latent corruption into an immediate
   [Invalid_argument], while reads stay allowed and the guard is always
   released — even when the fold raises. *)
let test_mutation_during_fold () =
  let c = Lru.create ~capacity:4 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  let raises op = try op (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "add during fold" true
    (raises (fun () -> Lru.fold c (fun _ () -> Lru.add c "c" 3) ()));
  Alcotest.(check bool) "remove during fold" true
    (raises (fun () -> Lru.fold c (fun _ () -> Lru.remove c "a") ()));
  Alcotest.(check bool) "clear during fold" true
    (raises (fun () -> Lru.fold c (fun _ () -> Lru.clear c) ()));
  (* Non-structural reads inside the fold are fine. *)
  Alcotest.(check int) "peek during fold ok" 2
    (Lru.fold c (fun _ acc -> ignore (Lru.peek c "a" : int option); acc + 1) 0);
  (* A raising fold must release the guard for the next mutation. *)
  (try Lru.fold c (fun _ () -> failwith "boom") () with Failure _ -> ());
  Lru.add c "d" 4;
  Alcotest.(check bool) "guard released after raising fold" true (Lru.mem c "d")

let qcheck_never_exceeds_capacity =
  QCheck.Test.make ~name:"length never exceeds capacity" ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_range 0 60) (int_range 0 20)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.add c k k) keys;
      Lru.length c <= cap)

let qcheck_recent_k_survive =
  QCheck.Test.make ~name:"most recent distinct keys survive" ~count:300
    QCheck.(pair (int_range 1 6) (list_of_size (QCheck.Gen.int_range 1 40) (int_range 0 15)))
    (fun (cap, keys) ->
      let c = Lru.create ~capacity:cap in
      List.iter (fun k -> Lru.add c k k) keys;
      (* The min(cap, distinct) most recently added keys must be present. *)
      let recent_first =
        List.fold_left
          (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
          [] (List.rev keys)
      in
      let expected = List.filteri (fun i _ -> i < cap) recent_first in
      List.for_all (Lru.mem c) expected)

let () =
  Alcotest.run "lru"
    [
      ( "unit",
        [
          Alcotest.test_case "add/find" `Quick test_basic_add_find;
          Alcotest.test_case "eviction order" `Quick test_eviction_order;
          Alcotest.test_case "replace" `Quick test_replace_does_not_evict;
          Alcotest.test_case "capacity one" `Quick test_capacity_one;
          Alcotest.test_case "capacity-one churn" `Quick test_capacity_one_churn;
          Alcotest.test_case "re-insert LRU head" `Quick test_reinsert_lru_head_refreshes;
          Alcotest.test_case "peek is side-effect free" `Quick test_peek_no_side_effects;
          Alcotest.test_case "reset_counters" `Quick test_reset_counters;
          Alcotest.test_case "hits/misses" `Quick test_hits_misses;
          Alcotest.test_case "find_or_add" `Quick test_find_or_add;
          Alcotest.test_case "remove/clear" `Quick test_remove_clear;
          Alcotest.test_case "rejects zero capacity" `Quick test_rejects_zero_capacity;
          Alcotest.test_case "mutation during fold" `Quick test_mutation_during_fold;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest qcheck_recent_k_survive;
        ] );
    ]
