open Bionav_util
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module MA = Bionav_mesh.Mesh_ascii
module TN = Bionav_mesh.Tree_number
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module Nbib = Bionav_corpus.Nbib
module Qual = Bionav_mesh.Qualifiers

let signature h =
  List.sort compare
    (List.filter_map
       (fun i ->
         if i = H.root h then None
         else Some (TN.to_string (Bionav_mesh.Concept.tree_number (H.concept h i)), H.label h i))
       (List.init (H.size h) Fun.id))

(* --- Mesh_ascii --- *)

let d_file =
  String.concat "\n"
    [
      "*NEWRECORD";
      "RECTYPE = D";
      "MH = Calcimycin";
      "MN = D03.633.100";
      "UI = D000001";
      "";
      "*NEWRECORD";
      "RECTYPE = D";
      "MH = Chemistry Stuff";
      "MN = D03";
      "MN = D03.633";
      "UI = D000002";
      "";
      "*NEWRECORD";
      "RECTYPE = Q";
      "SH = metabolism";
      "";
      "*NEWRECORD";
      "RECTYPE = D";
      "MH = Top Category";
      "MN = D03.900";
      "UI = D000003";
    ]

let test_ascii_parse () =
  let h = MA.of_string d_file in
  (* Root + 4 positions (Chemistry Stuff occupies two). *)
  Alcotest.(check int) "nodes" 5 (H.size h);
  Alcotest.(check (option int)) "deep node exists" (Some 3)
    (Option.map (H.depth h) (H.find_by_tree_number h (TN.of_string "D03.633.100")));
  (* The qualifier record is skipped. *)
  Alcotest.(check (option int)) "no qualifier node" None (H.find_by_label h "metabolism")

let test_ascii_multiple_positions_share_label () =
  let h = MA.of_string d_file in
  let a = Option.get (H.find_by_tree_number h (TN.of_string "D03")) in
  let b = Option.get (H.find_by_tree_number h (TN.of_string "D03.633")) in
  Alcotest.(check string) "same heading" (H.label h a) (H.label h b);
  Alcotest.(check string) "heading text" "Chemistry Stuff" (H.label h a)

let test_ascii_roundtrip_synthetic () =
  let h = S.generate ~params:S.small_params ~seed:91 () in
  let h' = MA.of_string (MA.to_string h) in
  Alcotest.(check bool) "roundtrip" true (signature h = signature h')

let test_ascii_rejects_orphan () =
  let text = "*NEWRECORD\nMH = Orphan\nMN = D03.633.100\n" in
  Alcotest.(check bool) "missing parents" true
    (try
       ignore (MA.of_string text);
       false
     with Invalid_argument _ -> true)

let test_ascii_rejects_empty () =
  Alcotest.(check bool) "no descriptors" true
    (try
       ignore (MA.of_string "*NEWRECORD\nRECTYPE = Q\nSH = foo\n");
       false
     with Invalid_argument _ -> true)

(* --- Nbib --- *)

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:92 ())

let medline =
  lazy (G.generate ~params:{ G.small_params with G.n_citations = 60 } ~seed:93 (Lazy.force hierarchy))

let test_nbib_roundtrip () =
  let m = Lazy.force medline in
  let text = Nbib.to_string m in
  let m' = Nbib.of_string ~hierarchy:(Lazy.force hierarchy) text in
  Alcotest.(check int) "size" (M.size m) (M.size m');
  for i = 0 to M.size m - 1 do
    let a = M.citation m i and b = M.citation m' i in
    Alcotest.(check string) "title" a.Cit.title b.Cit.title;
    Alcotest.(check string) "abstract" a.Cit.abstract b.Cit.abstract;
    Alcotest.(check (list string)) "authors" a.Cit.authors b.Cit.authors;
    Alcotest.(check string) "journal" a.Cit.journal b.Cit.journal;
    Alcotest.(check int) "year" a.Cit.year b.Cit.year;
    Alcotest.(check bool) "concepts" true (Intset.equal (Cit.concepts a) (Cit.concepts b));
    Alcotest.(check (list int)) "major topics"
      (List.sort Int.compare a.Cit.major_topics)
      (List.sort Int.compare b.Cit.major_topics);
    Alcotest.(check bool) "qualifiers" true (a.Cit.qualified = b.Cit.qualified)
  done

let test_nbib_wrapping () =
  let m = Lazy.force medline in
  let text = Nbib.citation_to_string (Lazy.force hierarchy) (M.citation m 0) in
  List.iter
    (fun line ->
      Alcotest.(check bool)
        (Printf.sprintf "line within 80 cols: %s" line)
        true
        (String.length line <= 80))
    (String.split_on_char '\n' text)

let hand_written =
  String.concat "\n"
    [
      "PMID- 424242";
      "TI  - A hand-written";
      "      record with continuations.";
      "AB  - Some abstract.";
      "AU  - Smith J";
      "AU  - Chen K";
      "JT  - J Test";
      "DP  - 2003 Jun";
      "MH  - Anatomy/metabolism/genetics";
      "MH  - *Organisms";
      "MH  - Unknown Heading Xyz";
    ]

let test_nbib_hand_written_skip_unknown () =
  let h = Lazy.force hierarchy in
  let m = Nbib.of_string ~on_unknown_mh:`Skip ~hierarchy:h hand_written in
  Alcotest.(check int) "one record, renumbered" 1 (M.size m);
  let c = M.citation m 0 in
  Alcotest.(check int) "id renumbered" 0 c.Cit.id;
  Alcotest.(check string) "continuation joined" "A hand-written record with continuations."
    c.Cit.title;
  Alcotest.(check int) "year from DP prefix" 2003 c.Cit.year;
  Alcotest.(check (list string)) "authors" [ "Smith J"; "Chen K" ] c.Cit.authors;
  Alcotest.(check int) "two known concepts" 2 (Intset.cardinal (Cit.concepts c));
  let organisms = Option.get (H.find_by_label h "Organisms") in
  Alcotest.(check (list int)) "major topic is starred" [ organisms ] c.Cit.major_topics;
  let anatomy = Option.get (H.find_by_label h "Anatomy") in
  let me = Option.get (Qual.find_by_name "metabolism") in
  let ge = Option.get (Qual.find_by_name "genetics") in
  Alcotest.(check bool) "qualifiers parsed" true (c.Cit.qualified = [ (anatomy, [ me; ge ]) ])

let test_nbib_unknown_mh_fails_by_default () =
  Alcotest.(check bool) "fails" true
    (try
       ignore (Nbib.of_string ~hierarchy:(Lazy.force hierarchy) hand_written);
       false
     with Invalid_argument _ -> true)

let test_nbib_rejects_leading_junk () =
  Alcotest.(check bool) "junk before PMID" true
    (try
       ignore (Nbib.of_string ~hierarchy:(Lazy.force hierarchy) "TI  - no pmid\n");
       false
     with Invalid_argument _ -> true)

let test_nbib_rejects_unknown_qualifier () =
  let h = Lazy.force hierarchy in
  let text = "PMID- 1\nTI  - t\nMH  - Anatomy/zzzz\n" in
  Alcotest.(check bool) "bad qualifier" true
    (try
       ignore (Nbib.of_string ~hierarchy:h text);
       false
     with Invalid_argument _ -> true)

let test_qualifier_table () =
  Alcotest.(check bool) "non-trivial table" true (Qual.count >= 30);
  let me = Option.get (Qual.find_by_name "Metabolism") in
  Alcotest.(check string) "name" "metabolism" (Qual.name me);
  Alcotest.(check string) "abbreviation" "ME" (Qual.abbreviation me);
  Alcotest.(check (option int)) "by abbreviation" (Some me) (Qual.find_by_abbreviation "me");
  Alcotest.(check (option int)) "unknown" None (Qual.find_by_name "flavour");
  Alcotest.(check int) "all enumerates" Qual.count (List.length (Qual.all ()));
  (* Names and abbreviations are unique. *)
  let names = List.map Qual.name (Qual.all ()) in
  Alcotest.(check int) "unique names" Qual.count
    (List.length (List.sort_uniq String.compare names));
  let abbrevs = List.map Qual.abbreviation (Qual.all ()) in
  Alcotest.(check int) "unique abbreviations" Qual.count
    (List.length (List.sort_uniq String.compare abbrevs))

let test_nbib_save_load () =
  let m = Lazy.force medline in
  let path = Filename.temp_file "bionav" ".nbib" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Nbib.save m path;
      let m' = Nbib.load ~hierarchy:(Lazy.force hierarchy) path in
      Alcotest.(check int) "size" (M.size m) (M.size m'))

(* Corruption fuzz: parsers must fail only with Invalid_argument (or
   succeed), never leak any other exception. *)
let fuzz_parser name parse seed_text =
  let rng = Rng.create 77 in
  let bytes = Bytes.of_string seed_text in
  for _ = 1 to 300 do
    let pos = Rng.int rng (Bytes.length bytes) in
    let old = Bytes.get bytes pos in
    Bytes.set bytes pos (Char.chr (Rng.int rng 256));
    (try ignore (parse (Bytes.to_string bytes)) with
    | Invalid_argument _ -> ()
    | e -> Alcotest.fail (Printf.sprintf "%s: unexpected %s" name (Printexc.to_string e)));
    Bytes.set bytes pos old
  done

let test_fuzz_mesh_ascii () = fuzz_parser "mesh_ascii" MA.of_string d_file

let test_fuzz_nbib () =
  let h = Lazy.force hierarchy in
  fuzz_parser "nbib" (Nbib.of_string ~on_unknown_mh:`Skip ~hierarchy:h) hand_written

let test_fuzz_flat_file () =
  let h = S.generate ~params:S.small_params ~seed:95 () in
  fuzz_parser "flat_file" Bionav_mesh.Flat_file.of_string
    (Bionav_mesh.Flat_file.to_string h)

let () =
  Alcotest.run "formats"
    [
      ( "mesh_ascii",
        [
          Alcotest.test_case "parse" `Quick test_ascii_parse;
          Alcotest.test_case "multi-position headings" `Quick
            test_ascii_multiple_positions_share_label;
          Alcotest.test_case "roundtrip synthetic" `Quick test_ascii_roundtrip_synthetic;
          Alcotest.test_case "rejects orphan" `Quick test_ascii_rejects_orphan;
          Alcotest.test_case "rejects empty" `Quick test_ascii_rejects_empty;
        ] );
      ( "nbib",
        [
          Alcotest.test_case "roundtrip" `Quick test_nbib_roundtrip;
          Alcotest.test_case "wrapping" `Quick test_nbib_wrapping;
          Alcotest.test_case "hand-written + skip" `Quick test_nbib_hand_written_skip_unknown;
          Alcotest.test_case "unknown MH fails" `Quick test_nbib_unknown_mh_fails_by_default;
          Alcotest.test_case "rejects leading junk" `Quick test_nbib_rejects_leading_junk;
          Alcotest.test_case "rejects unknown qualifier" `Quick
            test_nbib_rejects_unknown_qualifier;
          Alcotest.test_case "save/load" `Quick test_nbib_save_load;
        ] );
      ( "qualifiers",
        [ Alcotest.test_case "table" `Quick test_qualifier_table ] );
      ( "fuzz",
        [
          Alcotest.test_case "mesh ascii corruption" `Quick test_fuzz_mesh_ascii;
          Alcotest.test_case "nbib corruption" `Quick test_fuzz_nbib;
          Alcotest.test_case "flat file corruption" `Quick test_fuzz_flat_file;
        ] );
    ]
