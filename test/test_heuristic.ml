open Bionav_util
open Bionav_core

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

(* A random tree with Zipf-ish weights, like a navigation-tree component. *)
let random_tree seed n =
  let rng = Rng.create seed in
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  let next = ref 0 in
  let results =
    Array.init n (fun _ ->
        let k = 1 + Rng.int rng 8 in
        let l = List.init k (fun j -> !next + j) in
        (* Overlapping id ranges create duplicate citations across nodes. *)
        next := !next + (k / 2) + 1;
        Docset.of_list l)
  in
  let totals = Array.init n (fun i -> Docset.cardinal results.(i) * (2 + Rng.int rng 30)) in
  Comp_tree.make ~parent ~results ~totals ()

let is_antichain tree cut =
  let rec ancestor a b =
    let p = Comp_tree.parent tree b in
    if p = -1 then false else p = a || ancestor a p
  in
  List.for_all (fun a -> List.for_all (fun b -> a = b || not (ancestor a b)) cut) cut

let test_small_tree_uses_opt_directly () =
  let t =
    mk [| -1; 0; 0 |]
      [| [ 0 ]; List.init 20 Fun.id; List.init 20 (fun i -> 30 + i) |]
      [| 5; 60; 60 |]
  in
  let r = Heuristic.best_cut t in
  Alcotest.(check int) "reduced size = tree size" 3 r.Heuristic.reduced_size;
  Alcotest.(check bool) "valid cut" true (is_antichain t r.Heuristic.cut_children);
  Alcotest.(check bool) "non-empty" true (r.Heuristic.cut_children <> [])

let test_large_tree_reduces () =
  let t = random_tree 3 200 in
  let r = Heuristic.best_cut ~k:10 t in
  Alcotest.(check bool) "reduced to <= k" true (r.Heuristic.reduced_size <= 10);
  Alcotest.(check bool) "cut children in tree" true
    (List.for_all (fun v -> v > 0 && v < 200) r.Heuristic.cut_children);
  Alcotest.(check bool) "antichain" true (is_antichain t r.Heuristic.cut_children)

let test_deterministic () =
  let t = random_tree 5 150 in
  let a = Heuristic.best_cut t and b = Heuristic.best_cut t in
  Alcotest.(check (list int)) "same cut" a.Heuristic.cut_children b.Heuristic.cut_children

let test_many_random_trees_valid () =
  for seed = 1 to 30 do
    let n = 2 + (seed * 7 mod 120) in
    let t = random_tree seed n in
    let r = Heuristic.best_cut t in
    if not (is_antichain t r.Heuristic.cut_children) then
      Alcotest.fail (Printf.sprintf "invalid cut for seed %d" seed);
    if r.Heuristic.cut_children = [] then Alcotest.fail "empty cut"
  done

let test_k_equals_opt_on_small () =
  (* When the tree fits in k, the heuristic must equal Opt-EdgeCut. *)
  let t = random_tree 11 8 in
  let r = Heuristic.best_cut ~k:10 t in
  let sol = Opt_edgecut.solve t in
  Alcotest.(check (list int)) "same as optimal" sol.Opt_edgecut.cut_children
    r.Heuristic.cut_children

let test_elapsed_recorded () =
  let t = random_tree 13 300 in
  let r = Heuristic.best_cut t in
  Alcotest.(check bool) "non-negative time" true (r.Heuristic.elapsed_ms >= 0.)

let test_rejects_bad_input () =
  let t = mk [| -1 |] [| [ 1 ] |] [| 2 |] in
  Alcotest.(check bool) "singleton" true
    (try
       ignore (Heuristic.best_cut t);
       false
     with Invalid_argument _ -> true);
  let t2 = mk [| -1; 0 |] [| [ 1 ]; [ 2 ] |] [| 2; 2 |] in
  Alcotest.(check bool) "k too small" true
    (try
       ignore (Heuristic.best_cut ~k:1 t2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "k too large" true
    (try
       ignore (Heuristic.best_cut ~k:100 t2);
       false
     with Invalid_argument _ -> true)

let test_plan_lifecycle () =
  let t = random_tree 21 60 in
  let report, plan = Heuristic.best_cut_with_plan ~k:8 t in
  Alcotest.(check (list int)) "plan's first cut = best_cut" (Heuristic.best_cut ~k:8 t).Heuristic.cut_children
    report.Heuristic.cut_children;
  (* Drain the plan: each replan must give a valid antichain on the original
     tree, and the plan must eventually exhaust. *)
  let rec drain plan guard =
    if guard = 0 then Alcotest.fail "plan never exhausted";
    match Heuristic.replan plan with
    | None -> Alcotest.(check bool) "exhausted flag" false (Heuristic.plan_usable plan)
    | Some (r, next) ->
        Alcotest.(check bool) "valid" true (is_antichain t r.Heuristic.cut_children);
        Alcotest.(check bool) "non-empty" true (r.Heuristic.cut_children <> []);
        Alcotest.(check bool) "shrinking" true
          (next == next && r.Heuristic.reduced_size <= report.Heuristic.reduced_size);
        drain next (guard - 1)
  in
  drain plan 50

let test_original_tree_accessor () =
  let t = random_tree 22 40 in
  let _, plan = Heuristic.best_cut_with_plan ~k:6 t in
  Alcotest.(check int) "original preserved" (Comp_tree.size t)
    (Comp_tree.size (Heuristic.original_tree plan))

let qcheck_valid_cuts =
  QCheck.Test.make ~name:"heuristic cuts are always valid" ~count:100
    QCheck.(pair (int_range 2 150) (int_range 0 10_000))
    (fun (n, seed) ->
      let t = random_tree seed n in
      let r = Heuristic.best_cut t in
      r.Heuristic.cut_children <> []
      && is_antichain t r.Heuristic.cut_children
      && List.for_all (fun v -> v > 0 && v < n) r.Heuristic.cut_children)

let () =
  Alcotest.run "heuristic"
    [
      ( "unit",
        [
          Alcotest.test_case "small uses opt" `Quick test_small_tree_uses_opt_directly;
          Alcotest.test_case "large reduces" `Quick test_large_tree_reduces;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "random trees valid" `Quick test_many_random_trees_valid;
          Alcotest.test_case "k covers tree = optimal" `Quick test_k_equals_opt_on_small;
          Alcotest.test_case "elapsed recorded" `Quick test_elapsed_recorded;
          Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
          Alcotest.test_case "plan lifecycle" `Quick test_plan_lifecycle;
          Alcotest.test_case "original tree accessor" `Quick test_original_tree_accessor;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_valid_cuts ]);
    ]
