open Bionav_util
open Bionav_core
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils
module Engine = Bionav_engine.Engine
module Clock = Bionav_resilience.Clock

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* A small corpus with a seeded, findable query word. *)
let world =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:211 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 500;
         seeded_groups =
           [
             {
               G.tag = Some "cancer";
               cluster = [ List.nth deep 0; List.nth deep 7 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:212 h in
     (DB.of_medline m, Eu.create m))

let engine ?config () =
  let database, eutils = Lazy.force world in
  Engine.create ?config ~database ~eutils ()

let must_session = function
  | Ok (Engine.Session s) -> s
  | Ok Engine.No_results -> Alcotest.fail "unexpected No_results"
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

(* --- strategy validation ---------------------------------------------- *)

let test_validate_strategy () =
  Alcotest.(check bool) "paged 0 rejected" true
    (Result.is_error (Engine.validate_strategy (Navigation.Static_paged { page_size = 0 })));
  Alcotest.(check bool) "paged -3 rejected" true
    (Result.is_error (Engine.validate_strategy (Navigation.Static_paged { page_size = -3 })));
  Alcotest.(check bool) "paged 1 ok" true
    (Result.is_ok (Engine.validate_strategy (Navigation.Static_paged { page_size = 1 })));
  Alcotest.(check bool) "static ok" true (Result.is_ok (Engine.validate_strategy Navigation.Static))

let test_strategy_of_name () =
  Alcotest.(check bool) "default is bionav" true (Result.is_ok (Engine.strategy_of_name None));
  List.iter
    (fun n ->
      Alcotest.(check bool) n true (Result.is_ok (Engine.strategy_of_name (Some n))))
    [ "bionav"; "static"; "paged"; "optimal"; "faceted" ];
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Engine.strategy_of_name (Some "wat")));
  Alcotest.(check bool) "paged with bad size rejected" true
    (Result.is_error (Engine.strategy_of_name ~page_size:0 (Some "paged")))

let test_start_validates () =
  let nav =
    let h = Bionav_mesh.Hierarchy.of_parents [| -1; 0 |] in
    Nav_tree.build ~hierarchy:h
      ~attachments:[ (1, Docset.of_list [ 1; 2; 3 ]) ]
      ~total_count:(fun _ -> 10)
  in
  Alcotest.(check bool) "bad strategy raises" true
    (try
       ignore (Engine.start (Navigation.Static_paged { page_size = 0 }) nav);
       false
     with Invalid_argument _ -> true);
  let session = Engine.start Navigation.Static nav in
  Alcotest.(check bool) "good strategy starts" true
    (Active_tree.is_visible (Navigation.active session) (Nav_tree.root nav))

(* --- search ------------------------------------------------------------ *)

let test_search_errors () =
  let t = engine () in
  Alcotest.(check bool) "blank query" true (Result.is_error (Engine.search t "   "));
  Alcotest.(check bool) "invalid strategy" true
    (Result.is_error
       (Engine.search t ~strategy:(Navigation.Static_paged { page_size = 0 }) "cancer"));
  Alcotest.(check int) "no sessions created" 0 (Engine.session_count t)

let test_search_no_results () =
  let t = engine () in
  (match Engine.search t "zzzznotaword" with
  | Ok Engine.No_results -> ()
  | _ -> Alcotest.fail "expected No_results");
  Alcotest.(check int) "no session" 0 (Engine.session_count t)

let test_search_creates_sessions_with_monotonic_ids () =
  let t = engine () in
  let s0 = must_session (Engine.search t "cancer") in
  let s1 = must_session (Engine.search t "cancer") in
  Alcotest.(check string) "first id" "s0" (Engine.session_id s0);
  Alcotest.(check string) "second id" "s1" (Engine.session_id s1);
  Alcotest.(check int) "two live" 2 (Engine.session_count t);
  Alcotest.(check bool) "lookup works" true
    (match Engine.find_session t "s0" with Some _ -> true | None -> false)

(* --- bounded store / LRU ------------------------------------------------ *)

let small_config = { Engine.default_config with Engine.max_sessions = 3 }

let test_eviction_bound () =
  let t = engine ~config:small_config () in
  for _ = 1 to 3 do
    ignore (must_session (Engine.search t "cancer"))
  done;
  Alcotest.(check int) "at capacity" 3 (Engine.session_count t);
  Alcotest.(check int) "no evictions yet" 0 (Engine.eviction_count t);
  (* The N+1st session evicts exactly one. *)
  ignore (must_session (Engine.search t "cancer"));
  Alcotest.(check int) "still at capacity" 3 (Engine.session_count t);
  Alcotest.(check int) "exactly one eviction" 1 (Engine.eviction_count t);
  (* The count never exceeds the bound no matter how many more arrive. *)
  for _ = 1 to 10 do
    ignore (must_session (Engine.search t "cancer"));
    Alcotest.(check bool) "bounded" true (Engine.session_count t <= 3)
  done;
  Alcotest.(check int) "eviction per overflow" 11 (Engine.eviction_count t)

let test_eviction_is_lru () =
  let t = engine ~config:small_config () in
  ignore (must_session (Engine.search t "cancer")) (* s0 *);
  ignore (must_session (Engine.search t "cancer")) (* s1 *);
  ignore (must_session (Engine.search t "cancer")) (* s2 *);
  (* Touch s0 so s1 becomes the least recently used. *)
  ignore (Engine.find_session t "s0");
  ignore (must_session (Engine.search t "cancer")) (* s3: evicts s1 *);
  Alcotest.(check bool) "s0 survives" true (Option.is_some (Engine.find_session t "s0"));
  Alcotest.(check bool) "s1 evicted" true (Option.is_none (Engine.find_session t "s1"));
  Alcotest.(check bool) "s2 survives" true (Option.is_some (Engine.find_session t "s2"))

let test_close () =
  let t = engine () in
  let s = must_session (Engine.search t "cancer") in
  Alcotest.(check bool) "close" true (Engine.close t (Engine.session_id s));
  Alcotest.(check int) "gone" 0 (Engine.session_count t);
  Alcotest.(check bool) "double close" false (Engine.close t (Engine.session_id s));
  Alcotest.(check bool) "unknown id" false (Engine.close t "nope")

let test_ttl_sweep () =
  let clock = Clock.simulated () in
  let config =
    { Engine.default_config with Engine.session_ttl_ms = Some 1000.; clock }
  in
  let t = engine ~config () in
  ignore (must_session (Engine.search t "cancer"));
  ignore (must_session (Engine.search t "cancer"));
  Alcotest.(check int) "fresh sessions survive" 0 (Engine.sweep t);
  Clock.advance clock 10_000.;
  Alcotest.(check int) "idle sessions expire" 2 (Engine.sweep t);
  Alcotest.(check int) "store empty" 0 (Engine.session_count t)

let test_ttl_touch_refreshes () =
  let clock = Clock.simulated () in
  let config =
    { Engine.default_config with Engine.session_ttl_ms = Some 1000.; clock }
  in
  let t = engine ~config () in
  let s = must_session (Engine.search t "cancer") in
  Clock.advance clock 900.;
  (* A lookup refreshes the idle clock, so the session survives a sweep
     that would otherwise have expired it. *)
  ignore (Engine.find_session t (Engine.session_id s));
  Clock.advance clock 900.;
  Alcotest.(check int) "touched session survives" 0 (Engine.sweep t);
  Clock.advance clock 200.;
  Alcotest.(check int) "then expires once idle" 1 (Engine.sweep t)

let test_sweep_without_ttl () =
  let clock = Clock.simulated () in
  let t = engine ~config:{ Engine.default_config with Engine.clock = clock } () in
  ignore (must_session (Engine.search t "cancer"));
  Clock.advance clock 1e12;
  Alcotest.(check int) "no ttl, no expiry" 0 (Engine.sweep t);
  Alcotest.(check int) "session kept" 1 (Engine.session_count t)

(* --- cache normalization ------------------------------------------------ *)

let test_query_normalization_shares_cache () =
  let t = engine () in
  let a = must_session (Engine.search t "  Cancer ") in
  let b = must_session (Engine.search t "cancer") in
  Alcotest.(check bool) "one tree, shared" true (Engine.session_nav a == Engine.session_nav b);
  Alcotest.(check bool) "hit rate reflects the hit" true (Engine.cache_hit_rate t >= 0.5)

(* --- navigation actions and metrics ------------------------------------- *)

let test_navigation_populates_metrics () =
  Metrics.reset ();
  let t = engine () in
  let s = must_session (Engine.search t "cancer") in
  let nav = Engine.session_nav s in
  let revealed = Engine.expand s (Nav_tree.root nav) in
  Alcotest.(check bool) "expand reveals" true (revealed <> []);
  Alcotest.(check bool) "backtrack undoes" true (Engine.backtrack s);
  Alcotest.(check bool) "expands counted" true
    (Metrics.value (Metrics.counter "bionav_expands_total") >= 1);
  Alcotest.(check bool) "latency observed" true
    (Metrics.count (Metrics.histogram "bionav_expand_latency_ms") >= 1);
  Alcotest.(check bool) "session counted" true
    (Metrics.value (Metrics.counter "bionav_sessions_started_total") >= 1);
  let text = Engine.metrics_text t in
  List.iter
    (fun sub -> Alcotest.(check bool) sub true (contains ~sub text))
    [
      "bionav_expands_total";
      "bionav_expand_latency_ms_count";
      "bionav_expand_latency_ms{quantile=\"0.5\"}";
      "bionav_sessions_live 1";
      "bionav_cache_misses_total";
    ]

let test_show_results_returns_citations () =
  let t = engine () in
  let s = must_session (Engine.search t "cancer") in
  let nav = Engine.session_nav s in
  let citations = Engine.show_results s (Nav_tree.root nav) in
  Alcotest.(check bool) "nonempty" true (not (Docset.is_empty citations))

let () =
  Alcotest.run "engine"
    [
      ( "strategies",
        [
          Alcotest.test_case "validate" `Quick test_validate_strategy;
          Alcotest.test_case "of_name" `Quick test_strategy_of_name;
          Alcotest.test_case "start validates" `Quick test_start_validates;
        ] );
      ( "search",
        [
          Alcotest.test_case "errors" `Quick test_search_errors;
          Alcotest.test_case "no results" `Quick test_search_no_results;
          Alcotest.test_case "monotonic ids" `Quick test_search_creates_sessions_with_monotonic_ids;
        ] );
      ( "store",
        [
          Alcotest.test_case "eviction bound" `Quick test_eviction_bound;
          Alcotest.test_case "LRU order" `Quick test_eviction_is_lru;
          Alcotest.test_case "close" `Quick test_close;
          Alcotest.test_case "ttl sweep" `Quick test_ttl_sweep;
          Alcotest.test_case "ttl touch refreshes" `Quick test_ttl_touch_refreshes;
          Alcotest.test_case "sweep without ttl" `Quick test_sweep_without_ttl;
        ] );
      ( "cache",
        [ Alcotest.test_case "normalization shares" `Quick test_query_normalization_shares_cache ] );
      ( "observability",
        [
          Alcotest.test_case "metrics populated" `Quick test_navigation_populates_metrics;
          Alcotest.test_case "show results" `Quick test_show_results_returns_citations;
        ] );
    ]
