open Bionav_util
module IS = Set.Make (Int)

let set = Alcotest.testable Intset.pp Intset.equal

let test_of_list_dedup () =
  let s = Intset.of_list [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check (list int)) "sorted unique" [ 1; 2; 3 ] (Intset.elements s);
  Alcotest.(check int) "cardinal" 3 (Intset.cardinal s)

let test_empty () =
  Alcotest.(check bool) "is_empty" true (Intset.is_empty Intset.empty);
  Alcotest.(check int) "cardinal" 0 (Intset.cardinal Intset.empty);
  Alcotest.(check bool) "nonempty" false (Intset.is_empty (Intset.singleton 5))

let test_mem () =
  let s = Intset.of_list [ 2; 4; 6; 8; 10 ] in
  List.iter (fun x -> Alcotest.(check bool) "member" true (Intset.mem x s)) [ 2; 4; 6; 8; 10 ];
  List.iter (fun x -> Alcotest.(check bool) "non-member" false (Intset.mem x s)) [ 1; 3; 5; 7; 9; 11 ]

let test_union_inter_diff () =
  let a = Intset.of_list [ 1; 2; 3; 4 ] and b = Intset.of_list [ 3; 4; 5 ] in
  Alcotest.check set "union" (Intset.of_list [ 1; 2; 3; 4; 5 ]) (Intset.union a b);
  Alcotest.check set "inter" (Intset.of_list [ 3; 4 ]) (Intset.inter a b);
  Alcotest.check set "diff" (Intset.of_list [ 1; 2 ]) (Intset.diff a b);
  Alcotest.check set "diff rev" (Intset.of_list [ 5 ]) (Intset.diff b a)

let test_union_with_empty () =
  let a = Intset.of_list [ 1; 2 ] in
  Alcotest.check set "left empty" a (Intset.union Intset.empty a);
  Alcotest.check set "right empty" a (Intset.union a Intset.empty)

let test_inter_cardinal () =
  let a = Intset.of_list [ 1; 3; 5; 7 ] and b = Intset.of_list [ 3; 4; 5; 6 ] in
  Alcotest.(check int) "matches inter" (Intset.cardinal (Intset.inter a b)) (Intset.inter_cardinal a b)

let test_add_remove () =
  let s = Intset.of_list [ 1; 3 ] in
  Alcotest.check set "add" (Intset.of_list [ 1; 2; 3 ]) (Intset.add 2 s);
  Alcotest.check set "add existing" s (Intset.add 3 s);
  Alcotest.check set "remove" (Intset.of_list [ 1 ]) (Intset.remove 3 s);
  Alcotest.check set "remove absent" s (Intset.remove 9 s)

let test_union_many () =
  let sets = [ Intset.of_list [ 1; 2 ]; Intset.of_list [ 2; 3 ]; Intset.of_list [ 4 ] ] in
  Alcotest.check set "union_many" (Intset.of_list [ 1; 2; 3; 4 ]) (Intset.union_many sets);
  Alcotest.check set "empty list" Intset.empty (Intset.union_many [])

let test_subset () =
  let a = Intset.of_list [ 1; 2 ] and b = Intset.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "subset" true (Intset.subset a b);
  Alcotest.(check bool) "not subset" false (Intset.subset b a);
  Alcotest.(check bool) "empty subset" true (Intset.subset Intset.empty a)

let test_choose () =
  Alcotest.(check int) "smallest" 2 (Intset.choose (Intset.of_list [ 5; 2; 9 ]));
  Alcotest.check_raises "empty" Not_found (fun () -> ignore (Intset.choose Intset.empty))

let test_fold_iter () =
  let s = Intset.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "fold sum" 6 (Intset.fold ( + ) s 0);
  let acc = ref [] in
  Intset.iter (fun x -> acc := x :: !acc) s;
  Alcotest.(check (list int)) "iter ascending" [ 3; 2; 1 ] !acc

let test_to_array_fresh () =
  let s = Intset.of_list [ 1; 2 ] in
  let a = Intset.to_array s in
  a.(0) <- 99;
  Alcotest.(check (list int)) "original intact" [ 1; 2 ] (Intset.elements s)

let test_of_sorted_array_unchecked () =
  let s = Intset.of_sorted_array_unchecked [| 1; 4; 9 |] in
  Alcotest.(check (list int)) "adopted" [ 1; 4; 9 ] (Intset.elements s)

(* Model-based properties against stdlib Set. *)
let model l = IS.of_list l
let to_model s = IS.of_list (Intset.elements s)

let gen_list = QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (int_range 0 100))

let qcheck_union =
  QCheck.Test.make ~name:"union matches model" ~count:500 (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      IS.equal
        (to_model (Intset.union (Intset.of_list a) (Intset.of_list b)))
        (IS.union (model a) (model b)))

let qcheck_inter =
  QCheck.Test.make ~name:"inter matches model" ~count:500 (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      IS.equal
        (to_model (Intset.inter (Intset.of_list a) (Intset.of_list b)))
        (IS.inter (model a) (model b)))

let qcheck_diff =
  QCheck.Test.make ~name:"diff matches model" ~count:500 (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      IS.equal
        (to_model (Intset.diff (Intset.of_list a) (Intset.of_list b)))
        (IS.diff (model a) (model b)))

let qcheck_union_many =
  QCheck.Test.make ~name:"union_many matches folded model" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 8) gen_list)
    (fun ls ->
      IS.equal
        (to_model (Intset.union_many (List.map Intset.of_list ls)))
        (List.fold_left (fun acc l -> IS.union acc (model l)) IS.empty ls))

(* Satellite: the heap-based large-k merge path (k > 8) against a plain
   fold of binary unions. *)
let qcheck_union_many_heap =
  QCheck.Test.make ~name:"union_many heap path matches fold of union" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 9 24) gen_list)
    (fun ls ->
      let sets = List.map Intset.of_list ls in
      Intset.equal (Intset.union_many sets)
        (List.fold_left Intset.union Intset.empty sets))

let qcheck_mem =
  QCheck.Test.make ~name:"mem matches model" ~count:500 (QCheck.pair gen_list (QCheck.int_range 0 100))
    (fun (l, x) -> Intset.mem x (Intset.of_list l) = IS.mem x (model l))

let qcheck_inter_cardinal =
  QCheck.Test.make ~name:"inter_cardinal consistent" ~count:500 (QCheck.pair gen_list gen_list)
    (fun (a, b) ->
      let sa = Intset.of_list a and sb = Intset.of_list b in
      Intset.inter_cardinal sa sb = Intset.cardinal (Intset.inter sa sb))

let () =
  Alcotest.run "intset"
    [
      ( "unit",
        [
          Alcotest.test_case "of_list dedup" `Quick test_of_list_dedup;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff;
          Alcotest.test_case "union with empty" `Quick test_union_with_empty;
          Alcotest.test_case "inter_cardinal" `Quick test_inter_cardinal;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "union_many" `Quick test_union_many;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "choose" `Quick test_choose;
          Alcotest.test_case "fold/iter" `Quick test_fold_iter;
          Alcotest.test_case "to_array fresh" `Quick test_to_array_fresh;
          Alcotest.test_case "of_sorted_array_unchecked" `Quick test_of_sorted_array_unchecked;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_union;
          QCheck_alcotest.to_alcotest qcheck_inter;
          QCheck_alcotest.to_alcotest qcheck_diff;
          QCheck_alcotest.to_alcotest qcheck_union_many;
          QCheck_alcotest.to_alcotest qcheck_union_many_heap;
          QCheck_alcotest.to_alcotest qcheck_mem;
          QCheck_alcotest.to_alcotest qcheck_inter_cardinal;
        ] );
    ]
