module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module FF = Bionav_mesh.Flat_file

(* Node ids may differ between the original (e.g. BFS construction order)
   and the parsed hierarchy (tree-number order); compare the id-independent
   content: the set of (tree number, label) pairs. Tree numbers encode the
   whole structure, so equality of these sets is structural equality. *)
let signature h =
  (* The parser names the implicit root "MeSH", so the root is skipped. *)
  List.sort compare
    (List.filter_map
       (fun i ->
         if i = H.root h then None
         else
           Some
             ( Bionav_mesh.Tree_number.to_string
                 (Bionav_mesh.Concept.tree_number (H.concept h i)),
               H.label h i ))
       (List.init (H.size h) Fun.id))

let hierarchies_equal a b = signature a = signature b

let test_roundtrip_small () =
  let h = H.of_parents ~labels:(Printf.sprintf "c%d") [| -1; 0; 1; 1; 0 |] in
  let h' = FF.of_string (FF.to_string h) in
  Alcotest.(check bool) "roundtrip" true (hierarchies_equal h h')

let test_roundtrip_synthetic () =
  let h = S.generate ~params:S.small_params ~seed:5 () in
  let h' = FF.of_string (FF.to_string h) in
  Alcotest.(check bool) "roundtrip" true (hierarchies_equal h h')

let test_comments_and_blanks () =
  let text = "# comment\n\nA|Alpha\n  \nA.000|Beta\n" in
  let h = FF.of_string text in
  Alcotest.(check int) "3 nodes incl. root" 3 (H.size h);
  Alcotest.(check string) "child label" "Beta" (H.label h 2)

let test_out_of_order_lines () =
  let text = "A.000|Beta\nA|Alpha\n" in
  let h = FF.of_string text in
  Alcotest.(check int) "parsed" 3 (H.size h);
  Alcotest.(check int) "parent link" 1 (H.parent h 2)

let rejects text =
  try
    ignore (FF.of_string text);
    false
  with Invalid_argument _ -> true

let test_rejects_missing_pipe () = Alcotest.(check bool) "missing pipe" true (rejects "Aalpha\n")

let test_rejects_missing_parent () =
  Alcotest.(check bool) "orphan" true (rejects "A.000|Beta\n")

let test_rejects_duplicate () =
  Alcotest.(check bool) "duplicate" true (rejects "A|x\nA|y\n")

let test_rejects_empty_label () = Alcotest.(check bool) "empty label" true (rejects "A|\n")

let test_save_load () =
  let h = H.of_parents [| -1; 0; 0; 1 |] in
  let path = Filename.temp_file "bionav_flat" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      FF.save h path;
      let h' = FF.load path in
      Alcotest.(check bool) "roundtrip through disk" true (hierarchies_equal h h'))

let () =
  Alcotest.run "flat_file"
    [
      ( "unit",
        [
          Alcotest.test_case "roundtrip small" `Quick test_roundtrip_small;
          Alcotest.test_case "roundtrip synthetic" `Quick test_roundtrip_synthetic;
          Alcotest.test_case "comments and blanks" `Quick test_comments_and_blanks;
          Alcotest.test_case "out of order" `Quick test_out_of_order_lines;
          Alcotest.test_case "rejects missing pipe" `Quick test_rejects_missing_pipe;
          Alcotest.test_case "rejects missing parent" `Quick test_rejects_missing_parent;
          Alcotest.test_case "rejects duplicate" `Quick test_rejects_duplicate;
          Alcotest.test_case "rejects empty label" `Quick test_rejects_empty_label;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
    ]
