open Bionav_util
open Bionav_core
module Ted = Bionav_npc.Ted

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

(* Star: root empty, children {1}, {1}, {2} — the Theorem 1 shape. *)
let star () =
  mk [| -1; 0; 0; 0 |] [| []; [ 1 ]; [ 1 ]; [ 2 ] |] [| 0; 5; 5; 5 |]

let test_components_of_cut () =
  let t = star () in
  Alcotest.(check (list (list int))) "upper then lowers" [ [ 0; 2 ]; [ 1 ]; [ 3 ] ]
    (Topdown_exhaustive.components_of_cut t [ 1; 3 ])

let test_components_rejects_invalid () =
  let t = mk [| -1; 0; 1 |] [| [ 0 ]; [ 1 ]; [ 2 ] |] [| 3; 3; 3 |] in
  let rejects cut =
    try
      ignore (Topdown_exhaustive.components_of_cut t cut);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (rejects []);
  Alcotest.(check bool) "root" true (rejects [ 0 ]);
  Alcotest.(check bool) "ancestor pair" true (rejects [ 1; 2 ])

let test_cost_of_cut () =
  let t = star () in
  (* Cut {3}: 2 components; distinct = |{1}| (upper: nodes 0,1,2) + |{2}| = 2.
     cost = 2 + 2/2 = 3. *)
  Alcotest.(check (float 1e-9)) "cut {3}" 3. (Topdown_exhaustive.cost_of_cut t [ 3 ]);
  (* Cut {1}: upper = {0,2,3} holding {1,2}; cost = 2 + (2+1)/2 = 3.5. *)
  Alcotest.(check (float 1e-9)) "cut {1}" 3.5 (Topdown_exhaustive.cost_of_cut t [ 1 ])

let test_duplicates_within () =
  let t = star () in
  (* Cut {3} keeps the two copies of element 1 together: 1 duplicate. *)
  Alcotest.(check int) "dup-preserving" 1 (Topdown_exhaustive.duplicates_within t [ 3 ]);
  Alcotest.(check int) "dup-splitting" 0 (Topdown_exhaustive.duplicates_within t [ 1 ])

let test_best_cut_fixed_j () =
  let t = star () in
  (match Topdown_exhaustive.best_cut t ~components:2 with
  | Some (cut, cost) ->
      Alcotest.(check (list int)) "keeps duplicates" [ 3 ] cut;
      Alcotest.(check (float 1e-9)) "cost" 3. cost
  | None -> Alcotest.fail "expected a cut");
  Alcotest.(check bool) "impossible j" true (Topdown_exhaustive.best_cut t ~components:9 = None)

let test_cost_duplicates_duality () =
  (* For fixed j, cost = j + (attached - duplicates)/j: minimizing cost is
     maximizing duplicates. Check on every valid 2-cut of a random tree. *)
  let rng = Rng.create 4 in
  for _ = 1 to 20 do
    let n = 5 + Rng.int rng 6 in
    let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
    let results =
      Array.init n (fun _ -> Docset.of_list (List.init (1 + Rng.int rng 4) (fun _ -> Rng.int rng 8)))
    in
    let t = Comp_tree.make ~parent ~results ~totals:(Array.make n 100) () in
    let attached =
      List.fold_left
        (fun a v -> a + Comp_tree.result_count t v)
        0
        (List.init n Fun.id)
    in
    match (Topdown_exhaustive.best_cut t ~components:2, Topdown_exhaustive.max_duplicates t ~components:2) with
    | Some (_, cost), Some dup ->
        let expected = 2. +. (float_of_int (attached - dup) /. 2.) in
        Alcotest.(check (float 1e-9)) "duality" expected cost
    | None, None -> ()
    | _ -> Alcotest.fail "solvers disagree about feasibility"
  done

let test_matches_ted_brute_force () =
  (* The core solver and the NPC library's TED solver must agree: convert the
     component tree into a TED instance (same shape, result ids as elements)
     and compare maximum duplicates for every feasible j. *)
  let rng = Rng.create 9 in
  for _ = 1 to 15 do
    let n = 4 + Rng.int rng 5 in
    let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
    let results =
      Array.init n (fun _ -> Docset.of_list (List.init (1 + Rng.int rng 3) (fun _ -> Rng.int rng 6)))
    in
    let t = Comp_tree.make ~parent ~results ~totals:(Array.make n 50) () in
    let ted = Ted.make ~parent ~elements:(Array.map Docset.elements results) in
    for j = 2 to n do
      let a = Topdown_exhaustive.max_duplicates t ~components:j in
      let b = Ted.best_duplicates ted ~components:j in
      Alcotest.(check (option int)) (Printf.sprintf "j=%d" j) b a
    done
  done

let test_best_cut_any () =
  let t = star () in
  let cut, cost = Topdown_exhaustive.best_cut_any t in
  Alcotest.(check bool) "non-empty" true (cut <> []);
  (* Must be at least as good as any fixed-j optimum. *)
  List.iter
    (fun j ->
      match Topdown_exhaustive.best_cut t ~components:j with
      | Some (_, c) -> Alcotest.(check bool) "dominates" true (cost <= c +. 1e-9)
      | None -> ())
    [ 2; 3; 4 ]

let test_best_cut_any_rejects_singleton () =
  let t = mk [| -1 |] [| [ 1 ] |] [| 2 |] in
  Alcotest.(check bool) "singleton" true
    (try
       ignore (Topdown_exhaustive.best_cut_any t);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "topdown_exhaustive"
    [
      ( "unit",
        [
          Alcotest.test_case "components of cut" `Quick test_components_of_cut;
          Alcotest.test_case "rejects invalid" `Quick test_components_rejects_invalid;
          Alcotest.test_case "cost of cut" `Quick test_cost_of_cut;
          Alcotest.test_case "duplicates within" `Quick test_duplicates_within;
          Alcotest.test_case "best cut fixed j" `Quick test_best_cut_fixed_j;
          Alcotest.test_case "cost/duplicates duality" `Quick test_cost_duplicates_duality;
          Alcotest.test_case "matches TED brute force" `Quick test_matches_ted_brute_force;
          Alcotest.test_case "best cut any" `Quick test_best_cut_any;
          Alcotest.test_case "rejects singleton" `Quick test_best_cut_any_rejects_singleton;
        ] );
    ]
