(* Cross-cutting metamorphic properties of the whole pipeline: relations
   that must hold between runs on transformed inputs, independent of any
   single module's unit behaviour. *)

open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module DB = Bionav_store.Database
module Codec = Bionav_store.Codec
module Eu = Bionav_search.Eutils

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:101 ())

let medline =
  lazy (G.generate ~params:{ G.small_params with G.n_citations = 400 } ~seed:102 (Lazy.force hierarchy))

let database = lazy (DB.of_medline (Lazy.force medline))

(* Result-set monotonicity: a navigation tree built for a superset of the
   results contains every concept node of the subset's tree, with at least
   the same attached counts. *)
let test_result_monotonicity () =
  let db = Lazy.force database in
  let small = Intset.of_list (List.init 30 (fun i -> i * 3)) in
  let large = Intset.union small (Intset.of_list (List.init 40 (fun i -> 200 + i))) in
  let nav_small = Nav_tree.of_database db small in
  let nav_large = Nav_tree.of_database db large in
  Alcotest.(check bool) "tree grows" true (Nav_tree.size nav_large >= Nav_tree.size nav_small);
  for node = 1 to Nav_tree.size nav_small - 1 do
    let concept = Nav_tree.concept_id nav_small node in
    match Nav_tree.node_of_concept nav_large concept with
    | None -> Alcotest.fail (Printf.sprintf "concept %d vanished in superset tree" concept)
    | Some node' ->
        Alcotest.(check bool) "counts grow" true
          (Nav_tree.result_count nav_large node' >= Nav_tree.result_count nav_small node)
  done

(* Query monotonicity: adding a token can only shrink an AND result. *)
let test_query_and_monotone () =
  let eu = Eu.create (Lazy.force medline) in
  let m = Lazy.force medline in
  let c = M.citation m 0 in
  (* Use two tokens that certainly occur somewhere. *)
  match Bionav_search.Tokenizer.tokens c.Bionav_corpus.Citation.title with
  | t1 :: t2 :: _ ->
      let one = Eu.esearch eu t1 in
      let both = Eu.esearch eu (t1 ^ " " ^ t2) in
      Alcotest.(check bool) "AND shrinks" true (Intset.subset both one)
  | _ -> Alcotest.fail "fixture title too short"

(* Codec idempotence: encode . decode . encode = encode. *)
let test_codec_idempotent () =
  let db = Lazy.force database in
  let once = Codec.encode db in
  let twice = Codec.encode (Codec.decode once) in
  Alcotest.(check bool) "stable bytes" true (String.equal once twice)

(* Codec fuzz: random single-byte corruption either fails cleanly with
   Invalid_argument or yields a decodable database — never any other
   exception. *)
let test_codec_fuzz_corruption () =
  let db = Lazy.force database in
  let bytes = Bytes.of_string (Codec.encode db) in
  let rng = Rng.create 103 in
  for _ = 1 to 200 do
    let pos = Rng.int rng (Bytes.length bytes) in
    let old = Bytes.get bytes pos in
    Bytes.set bytes pos (Char.chr (Rng.int rng 256));
    (try ignore (Codec.decode (Bytes.to_string bytes)) with
    | Invalid_argument _ -> ()
    | e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
    Bytes.set bytes pos old
  done

(* Strategy invariance: the static navigation cost to a target depends only
   on the tree, so repeating it is identical; and the total citations shown
   by SHOWRESULTS on the target component equal the target's subtree
   distinct count at that moment. *)
let test_static_cost_reproducible () =
  let db = Lazy.force database in
  let nav = Nav_tree.of_database db (Intset.of_list (List.init 50 (fun i -> i * 2))) in
  let target = Nav_tree.size nav - 1 in
  let a = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
  let b = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
  Alcotest.(check int) "identical" a.Simulate.navigation_cost b.Simulate.navigation_cost

(* Permuting citation ids must not change structural costs: rebuild the
   corpus with the same seed, shift all ids by renumbering through nbib
   (which renumbers densely), and compare navigation-tree shape. *)
let test_tree_shape_independent_of_ids () =
  let m = Lazy.force medline in
  let h = Lazy.force hierarchy in
  let renumbered = Bionav_corpus.Nbib.of_string ~hierarchy:h (Bionav_corpus.Nbib.to_string m) in
  let db1 = DB.of_medline m and db2 = DB.of_medline renumbered in
  (* nbib keeps record order, so ids are actually identical here; the deeper
     property is that both databases agree on every count. *)
  for c = 0 to H.size h - 1 do
    Alcotest.(check int) "LT equal" (DB.total_count db1 c) (DB.total_count db2 c)
  done

(* The navigation cost of BioNav to any target is bounded by the total
   number of concepts in the tree plus expansions (sanity upper bound). *)
let test_bionav_cost_bounded () =
  let db = Lazy.force database in
  let nav = Nav_tree.of_database db (Intset.of_list (List.init 60 Fun.id)) in
  let bound = 2 * Nav_tree.size nav in
  List.iter
    (fun target ->
      let o = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
      Alcotest.(check bool) "bounded" true (o.Simulate.navigation_cost <= bound))
    [ 1; Nav_tree.size nav / 2; Nav_tree.size nav - 1 ]

let () =
  Alcotest.run "metamorphic"
    [
      ( "pipeline",
        [
          Alcotest.test_case "result monotonicity" `Quick test_result_monotonicity;
          Alcotest.test_case "AND monotone" `Quick test_query_and_monotone;
          Alcotest.test_case "codec idempotent" `Quick test_codec_idempotent;
          Alcotest.test_case "codec corruption fuzz" `Quick test_codec_fuzz_corruption;
          Alcotest.test_case "static reproducible" `Quick test_static_cost_reproducible;
          Alcotest.test_case "id-independent counts" `Quick test_tree_shape_independent_of_ids;
          Alcotest.test_case "bionav cost bounded" `Quick test_bionav_cost_bounded;
        ] );
    ]
