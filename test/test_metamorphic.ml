(* Cross-cutting metamorphic properties of the whole pipeline: relations
   that must hold between runs on transformed inputs, independent of any
   single module's unit behaviour. *)

open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module DB = Bionav_store.Database
module Codec = Bionav_store.Codec
module Eu = Bionav_search.Eutils

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:101 ())

let medline =
  lazy (G.generate ~params:{ G.small_params with G.n_citations = 400 } ~seed:102 (Lazy.force hierarchy))

let database = lazy (DB.of_medline (Lazy.force medline))

(* Result-set monotonicity: a navigation tree built for a superset of the
   results contains every concept node of the subset's tree, with at least
   the same attached counts. *)
let test_result_monotonicity () =
  let db = Lazy.force database in
  let small = Docset.of_list (List.init 30 (fun i -> i * 3)) in
  let large = Docset.union small (Docset.of_list (List.init 40 (fun i -> 200 + i))) in
  let nav_small = Nav_tree.of_database db small in
  let nav_large = Nav_tree.of_database db large in
  Alcotest.(check bool) "tree grows" true (Nav_tree.size nav_large >= Nav_tree.size nav_small);
  for node = 1 to Nav_tree.size nav_small - 1 do
    let concept = Nav_tree.concept_id nav_small node in
    match Nav_tree.node_of_concept nav_large concept with
    | None -> Alcotest.fail (Printf.sprintf "concept %d vanished in superset tree" concept)
    | Some node' ->
        Alcotest.(check bool) "counts grow" true
          (Nav_tree.result_count nav_large node' >= Nav_tree.result_count nav_small node)
  done

(* Query monotonicity: adding a token can only shrink an AND result. *)
let test_query_and_monotone () =
  let eu = Eu.create (Lazy.force medline) in
  let m = Lazy.force medline in
  let c = M.citation m 0 in
  (* Use two tokens that certainly occur somewhere. *)
  match Bionav_search.Tokenizer.tokens c.Bionav_corpus.Citation.title with
  | t1 :: t2 :: _ ->
      let one = Eu.esearch eu t1 in
      let both = Eu.esearch eu (t1 ^ " " ^ t2) in
      Alcotest.(check bool) "AND shrinks" true (Docset.subset both one)
  | _ -> Alcotest.fail "fixture title too short"

(* Codec idempotence: encode . decode . encode = encode. *)
let test_codec_idempotent () =
  let db = Lazy.force database in
  let once = Codec.encode db in
  let twice = Codec.encode (Codec.decode once) in
  Alcotest.(check bool) "stable bytes" true (String.equal once twice)

(* Codec fuzz: random single-byte corruption either fails cleanly with
   Invalid_argument or yields a decodable database — never any other
   exception. *)
let test_codec_fuzz_corruption () =
  let db = Lazy.force database in
  let bytes = Bytes.of_string (Codec.encode db) in
  let rng = Rng.create 103 in
  for _ = 1 to 200 do
    let pos = Rng.int rng (Bytes.length bytes) in
    let old = Bytes.get bytes pos in
    Bytes.set bytes pos (Char.chr (Rng.int rng 256));
    (try ignore (Codec.decode (Bytes.to_string bytes)) with
    | Invalid_argument _ -> ()
    | e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
    Bytes.set bytes pos old
  done

(* Strategy invariance: the static navigation cost to a target depends only
   on the tree, so repeating it is identical; and the total citations shown
   by SHOWRESULTS on the target component equal the target's subtree
   distinct count at that moment. *)
let test_static_cost_reproducible () =
  let db = Lazy.force database in
  let nav = Nav_tree.of_database db (Docset.of_list (List.init 50 (fun i -> i * 2))) in
  let target = Nav_tree.size nav - 1 in
  let a = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
  let b = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
  Alcotest.(check int) "identical" a.Simulate.navigation_cost b.Simulate.navigation_cost

(* Permuting citation ids must not change structural costs: rebuild the
   corpus with the same seed, shift all ids by renumbering through nbib
   (which renumbers densely), and compare navigation-tree shape. *)
let test_tree_shape_independent_of_ids () =
  let m = Lazy.force medline in
  let h = Lazy.force hierarchy in
  let renumbered = Bionav_corpus.Nbib.of_string ~hierarchy:h (Bionav_corpus.Nbib.to_string m) in
  let db1 = DB.of_medline m and db2 = DB.of_medline renumbered in
  (* nbib keeps record order, so ids are actually identical here; the deeper
     property is that both databases agree on every count. *)
  for c = 0 to H.size h - 1 do
    Alcotest.(check int) "LT equal" (DB.total_count db1 c) (DB.total_count db2 c)
  done

(* The navigation cost of BioNav to any target is bounded by the total
   number of concepts in the tree plus expansions (sanity upper bound). *)
let test_bionav_cost_bounded () =
  let db = Lazy.force database in
  let nav = Nav_tree.of_database db (Docset.of_list (List.init 60 Fun.id)) in
  let bound = 2 * Nav_tree.size nav in
  List.iter
    (fun target ->
      let o = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
      Alcotest.(check bool) "bounded" true (o.Simulate.navigation_cost <= bound))
    [ 1; Nav_tree.size nav / 2; Nav_tree.size nav - 1 ]

(* --- Docset vs Intset equivalence (the tentpole's correctness anchor):
   over random attachment-style sets, every Docset operation agrees with
   the Intset reference implementation, and fingerprints are stable
   across arenas. *)

let gen_attachment =
  (* Mix of sparse and dense-ish ranges so both physical representations
     are exercised. *)
  QCheck.(
    oneof
      [
        list_of_size (Gen.int_range 0 40) (int_range 0 2000);
        list_of_size (Gen.int_range 0 200) (int_range 0 256);
      ])

let agree op_name dop iop (a, b) =
  let da = Docset.of_list a and db_ = Docset.of_list b in
  let ia = Intset.of_list a and ib = Intset.of_list b in
  let got = Docset.elements (dop da db_) and want = Intset.elements (iop ia ib) in
  if got = want then true
  else QCheck.Test.fail_reportf "%s: docset %s / intset %s" op_name
         (String.concat "," (List.map string_of_int got))
         (String.concat "," (List.map string_of_int want))

let qcheck_docset_union =
  QCheck.Test.make ~name:"docset union = intset union" ~count:300
    (QCheck.pair gen_attachment gen_attachment)
    (agree "union" Docset.union Intset.union)

let qcheck_docset_inter =
  QCheck.Test.make ~name:"docset inter = intset inter" ~count:300
    (QCheck.pair gen_attachment gen_attachment)
    (agree "inter" Docset.inter Intset.inter)

let qcheck_docset_diff =
  QCheck.Test.make ~name:"docset diff = intset diff" ~count:300
    (QCheck.pair gen_attachment gen_attachment)
    (agree "diff" Docset.diff Intset.diff)

let qcheck_docset_cardinal =
  QCheck.Test.make ~name:"docset cardinals = intset cardinals" ~count:300
    (QCheck.pair gen_attachment gen_attachment)
    (fun (a, b) ->
      let da = Docset.of_list a and db_ = Docset.of_list b in
      let ia = Intset.of_list a and ib = Intset.of_list b in
      Docset.cardinal da = Intset.cardinal ia
      && Docset.inter_cardinal da db_ = Intset.inter_cardinal ia ib
      && Docset.union_cardinal da db_ = Intset.cardinal (Intset.union ia ib)
      && Docset.subset da db_ = Intset.subset ia ib)

let qcheck_docset_fingerprint_stable =
  QCheck.Test.make ~name:"docset fingerprint stable across arenas" ~count:300
    gen_attachment
    (fun l ->
      (* Same content interned three ways: private arenas, a shared arena,
         and through set algebra — one fingerprint everywhere, and equal
         content is equal regardless of arena. *)
      let a = Docset.of_list l and b = Docset.of_list (List.rev l) in
      let arena = Docset_arena.create () in
      let c = Docset.of_list_in arena l in
      let rebuilt = Docset.union (Docset.of_list l) (Docset.of_list l) in
      Docset.fingerprint a = Docset.fingerprint b
      && Docset.fingerprint a = Docset.fingerprint c
      && Docset.fingerprint a = Docset.fingerprint rebuilt
      && Docset.equal a b && Docset.equal a c && Docset.equal a rebuilt)

let qcheck_docset_union_many =
  QCheck.Test.make ~name:"docset union_many = intset union_many" ~count:150
    QCheck.(list_of_size (Gen.int_range 0 12) gen_attachment)
    (fun ls ->
      Docset.elements (Docset.union_many (List.map Docset.of_list ls))
      = Intset.elements (Intset.union_many (List.map Intset.of_list ls)))

let () =
  Alcotest.run "metamorphic"
    [
      ( "pipeline",
        [
          Alcotest.test_case "result monotonicity" `Quick test_result_monotonicity;
          Alcotest.test_case "AND monotone" `Quick test_query_and_monotone;
          Alcotest.test_case "codec idempotent" `Quick test_codec_idempotent;
          Alcotest.test_case "codec corruption fuzz" `Quick test_codec_fuzz_corruption;
          Alcotest.test_case "static reproducible" `Quick test_static_cost_reproducible;
          Alcotest.test_case "id-independent counts" `Quick test_tree_shape_independent_of_ids;
          Alcotest.test_case "bionav cost bounded" `Quick test_bionav_cost_bounded;
        ] );
      ( "docset_vs_intset",
        [
          QCheck_alcotest.to_alcotest qcheck_docset_union;
          QCheck_alcotest.to_alcotest qcheck_docset_inter;
          QCheck_alcotest.to_alcotest qcheck_docset_diff;
          QCheck_alcotest.to_alcotest qcheck_docset_cardinal;
          QCheck_alcotest.to_alcotest qcheck_docset_fingerprint_stable;
          QCheck_alcotest.to_alcotest qcheck_docset_union_many;
        ] );
    ]
