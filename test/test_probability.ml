open Bionav_util
open Bionav_core

let feq = Alcotest.(check (float 1e-9))

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

let params = Probability.default_params

let test_explore_weight () =
  let t = mk [| -1; 0 |] [| [ 1; 2 ]; [] |] [| 10; 0 |] in
  feq "L/LT" 0.2 (Probability.explore_weight t 0);
  feq "empty node" 0. (Probability.explore_weight t 1)

let test_normalizer_sums () =
  let t = mk [| -1; 0; 0 |] [| [ 1 ]; [ 1; 2 ]; [ 3 ] |] [| 10; 4; 2 |] in
  feq "sum of weights" (0.1 +. 0.5 +. 0.5) (Probability.normalizer t)

let test_normalizer_floor () =
  let t = mk [| -1 |] [| [] |] [| 0 |] in
  Alcotest.(check bool) "positive" true (Probability.normalizer t > 0.)

let test_explore_normalized () =
  let t = mk [| -1; 0; 0 |] [| [ 1 ]; [ 1; 2 ]; [ 3 ] |] [| 10; 4; 2 |] in
  let norm = Probability.normalizer t in
  feq "whole tree is 1" 1.0 (Probability.explore ~norm t [ 0; 1; 2 ]);
  let p1 = Probability.explore ~norm t [ 1 ] in
  feq "share" (0.5 /. norm) p1

let test_explore_clamped () =
  let t = mk [| -1 |] [| [ 1 ] |] [| 1 |] in
  feq "clamped to 1" 1.0 (Probability.explore ~norm:0.1 t [ 0 ])

let test_expand_single_concept_zero () =
  let t = mk [| -1; 0 |] [| [ 1 ]; List.init 100 Fun.id |] [| 10; 200 |] in
  feq "singleton concept" 0. (Probability.expand params t ~members:[ 1 ] ~distinct:100)

let test_expand_thresholds () =
  let t = mk [| -1; 0; 0 |] [| [ 1 ]; [ 2 ]; [ 3 ] |] [| 5; 5; 5 |] in
  feq "above upper" 1.0 (Probability.expand params t ~members:[ 0; 1; 2 ] ~distinct:51);
  feq "below lower" 0.0 (Probability.expand params t ~members:[ 0; 1; 2 ] ~distinct:9)

let test_expand_entropy_uniform () =
  (* Two concepts with equal mass and no duplicates: entropy = max -> 1. *)
  let t = mk [| -1; 0 |] [| List.init 15 Fun.id; List.init 15 (fun i -> 15 + i) |] [| 40; 40 |] in
  let px = Probability.expand params t ~members:[ 0; 1 ] ~distinct:30 in
  feq "uniform distribution" 1.0 px

let test_expand_entropy_skewed () =
  (* One concept dominates: entropy low. *)
  let t = mk [| -1; 0 |] [| List.init 29 Fun.id; [ 29 ] |] [| 40; 10 |] in
  let px = Probability.expand params t ~members:[ 0; 1 ] ~distinct:30 in
  Alcotest.(check bool) "strictly between" true (px >= 0. && px < 0.5)

let test_expand_singleton_supernode_uses_multiplicity () =
  (* One node, but it stands for 3 concepts: still expandable. *)
  let t =
    Comp_tree.make ~parent:[| -1 |]
      ~results:[| Docset.of_list (List.init 30 Fun.id) |]
      ~totals:[| 90 |] ~multiplicity:[| 3 |]
      ~sub_weights:[| [| 10.; 10.; 10. |] |]
      ()
  in
  let px = Probability.expand params t ~members:[ 0 ] ~distinct:30 in
  feq "uniform subweights" 1.0 px

let test_expand_single_positive_weight_zero () =
  let t = mk [| -1; 0 |] [| List.init 30 Fun.id; [] |] [| 40; 1 |] in
  feq "only one concept holds mass" 0.
    (Probability.expand params t ~members:[ 0; 1 ] ~distinct:30)

let test_expand_rejects_empty () =
  let t = mk [| -1 |] [| [ 1 ] |] [| 1 |] in
  Alcotest.(check bool) "empty members" true
    (try
       ignore (Probability.expand params t ~members:[] ~distinct:0);
       false
     with Invalid_argument _ -> true)

let test_future_drilldown () =
  feq "m<=1 free" 0. (Probability.future_drilldown_cost params 1);
  feq "k concepts = one level" (11.) (Probability.future_drilldown_cost params 10);
  let c100 = Probability.future_drilldown_cost params 100 in
  feq "two levels" 22. c100;
  Alcotest.(check bool) "monotone" true
    (Probability.future_drilldown_cost params 1000 > c100)

let test_expand_clamped_high_duplicates () =
  (* Heavy duplication: raw entropy above uniform max must clamp to 1. *)
  let t =
    mk [| -1; 0; 0 |]
      [| List.init 20 Fun.id; List.init 20 Fun.id; List.init 20 Fun.id |]
      [| 30; 30; 30 |]
  in
  let px = Probability.expand params t ~members:[ 0; 1; 2 ] ~distinct:20 in
  Alcotest.(check bool) "within [0,1]" true (px >= 0. && px <= 1.)

(* --- params validation / model identity --------------------------------- *)

let raises_invalid name f =
  Alcotest.(check bool) name true (try f () ; false with Invalid_argument _ -> true)

let test_validate_params () =
  Probability.validate_params params;
  Probability.validate_params { params with Probability.lower_threshold = 0 };
  raises_invalid "negative lower" (fun () ->
      Probability.validate_params { params with Probability.lower_threshold = -1 });
  raises_invalid "upper below lower" (fun () ->
      Probability.validate_params
        { params with Probability.upper_threshold = 5; Probability.lower_threshold = 6 });
  raises_invalid "zero expand cost" (fun () ->
      Probability.validate_params { params with Probability.expand_cost = 0. });
  raises_invalid "negative expand cost" (fun () ->
      Probability.validate_params { params with Probability.expand_cost = -3. });
  raises_invalid "fanout below 2" (fun () ->
      Probability.validate_params { params with Probability.future_fanout = 1 })

let test_invalid_params_rejected_everywhere () =
  let bad = { params with Probability.expand_cost = -1. } in
  raises_invalid "static" (fun () -> ignore (Probability.static ~params:bad ()));
  raises_invalid "model_of" (fun () -> ignore (Probability.model_of ~params:bad ()));
  raises_invalid "make_model" (fun () ->
      ignore
        (Probability.make_model ~params:bad ~fingerprint:"x"
           ~normalizer:Probability.normalizer
           ~explore:(fun ~norm t m -> Probability.explore ~norm t m)
           ~expand:(Probability.expand bad)))

let test_fingerprint_stability () =
  Alcotest.(check string)
    "same params, same fingerprint"
    (Probability.params_fingerprint params)
    (Probability.params_fingerprint { params with Probability.upper_threshold = 50 });
  Alcotest.(check bool)
    "distinct params, distinct fingerprints" false
    (Probability.params_fingerprint params
    = Probability.params_fingerprint { params with Probability.upper_threshold = 51 });
  Alcotest.(check string)
    "model carries static fingerprint"
    (Printf.sprintf "static/%s" (Probability.params_fingerprint params))
    (Probability.static ()).Probability.fingerprint

let test_model_of_precedence () =
  let custom = { params with Probability.upper_threshold = 51 } in
  let m = Probability.static ~params:custom () in
  Alcotest.(check string)
    "explicit model wins" m.Probability.fingerprint
    (Probability.model_of ~model:m ()).Probability.fingerprint;
  Alcotest.(check string)
    "params fall back to a static model"
    (Probability.static ~params:custom ()).Probability.fingerprint
    (Probability.model_of ~params:custom ()).Probability.fingerprint;
  Alcotest.(check string)
    "default is the shared default model"
    Probability.default_model.Probability.fingerprint
    (Probability.model_of ()).Probability.fingerprint

let () =
  Alcotest.run "probability"
    [
      ( "explore",
        [
          Alcotest.test_case "weight" `Quick test_explore_weight;
          Alcotest.test_case "normalizer sums" `Quick test_normalizer_sums;
          Alcotest.test_case "normalizer floor" `Quick test_normalizer_floor;
          Alcotest.test_case "normalized" `Quick test_explore_normalized;
          Alcotest.test_case "clamped" `Quick test_explore_clamped;
        ] );
      ( "expand",
        [
          Alcotest.test_case "single concept" `Quick test_expand_single_concept_zero;
          Alcotest.test_case "thresholds" `Quick test_expand_thresholds;
          Alcotest.test_case "entropy uniform" `Quick test_expand_entropy_uniform;
          Alcotest.test_case "entropy skewed" `Quick test_expand_entropy_skewed;
          Alcotest.test_case "supernode multiplicity" `Quick
            test_expand_singleton_supernode_uses_multiplicity;
          Alcotest.test_case "single positive weight" `Quick test_expand_single_positive_weight_zero;
          Alcotest.test_case "rejects empty" `Quick test_expand_rejects_empty;
          Alcotest.test_case "clamped duplicates" `Quick test_expand_clamped_high_duplicates;
        ] );
      ( "future",
        [ Alcotest.test_case "drilldown surrogate" `Quick test_future_drilldown ] );
      ( "model",
        [
          Alcotest.test_case "validate_params" `Quick test_validate_params;
          Alcotest.test_case "constructors validate" `Quick test_invalid_params_rejected_everywhere;
          Alcotest.test_case "fingerprint stability" `Quick test_fingerprint_stability;
          Alcotest.test_case "model_of precedence" `Quick test_model_of_precedence;
        ] );
    ]
