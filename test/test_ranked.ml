open Bionav_util
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module Ranked = Bionav_search.Ranked

let tiny_medline () =
  let h = Bionav_mesh.Hierarchy.of_parents [| -1; 0 |] in
  let mk id title abstract =
    {
      Cit.id;
      title;
      abstract;
      authors = [];
      journal = "J";
      year = 2000;
      major_topics = [ 1 ];
      concepts = Intset.of_list [ 1 ];
      qualified = [];
    }
  in
  M.make h
    [|
      (* doc 0: one body mention in long text *)
      mk 0 "cardiology overview"
        "apoptosis mentioned once amid much other material about various unrelated topics \
         padding padding padding padding padding padding padding";
      (* doc 1: title mention, short *)
      mk 1 "apoptosis signaling" "short text";
      (* doc 2: many mentions *)
      mk 2 "apoptosis and apoptosis again" "apoptosis apoptosis everywhere";
      (* doc 3: no mention *)
      mk 3 "completely different" "nothing relevant here";
    |]

let ranked = lazy (Ranked.build (tiny_medline ()))

let test_scores_zero_without_terms () =
  let r = Lazy.force ranked in
  Alcotest.(check (float 1e-9)) "no match" 0. (Ranked.score r ~query:"apoptosis" 3);
  Alcotest.(check (float 1e-9)) "unknown term" 0. (Ranked.score r ~query:"zzz" 2)

let test_more_mentions_score_higher () =
  let r = Lazy.force ranked in
  let s0 = Ranked.score r ~query:"apoptosis" 0 in
  let s2 = Ranked.score r ~query:"apoptosis" 2 in
  Alcotest.(check bool) "frequency dominates" true (s2 > s0);
  Alcotest.(check bool) "positive" true (s0 > 0.)

let test_title_weighted () =
  let r = Lazy.force ranked in
  (* doc 1 has a title mention and short text; doc 0 only one body mention
     in a long document. *)
  Alcotest.(check bool) "title + brevity wins" true
    (Ranked.score r ~query:"apoptosis" 1 > Ranked.score r ~query:"apoptosis" 0)

let test_search_order_and_limit () =
  let r = Lazy.force ranked in
  let results = Ranked.search r "apoptosis" in
  Alcotest.(check int) "three candidates" 3 (List.length results);
  (match results with
  | (top, _) :: _ -> Alcotest.(check int) "most relevant first" 2 top
  | [] -> Alcotest.fail "empty");
  let scores = List.map snd results in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> Float.compare b a) scores = scores);
  Alcotest.(check int) "limit respected" 1 (List.length (Ranked.search ~limit:1 r "apoptosis"))

let test_rank_external_set () =
  let r = Lazy.force ranked in
  let order = Ranked.rank r ~query:"apoptosis" (Docset.of_list [ 0; 1; 2; 3 ]) in
  Alcotest.(check int) "best first" 2 (List.hd order);
  Alcotest.(check int) "all preserved" 4 (List.length order);
  Alcotest.(check int) "irrelevant last" 3 (List.nth order 3)

let test_score_rejects_bad_doc () =
  let r = Lazy.force ranked in
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Ranked.score r ~query:"x" 99);
       false
     with Invalid_argument _ -> true)

let test_shares_boolean_index () =
  let r = Lazy.force ranked in
  Alcotest.(check int) "df via shared index" 3
    (Bionav_search.Inverted_index.document_frequency (Ranked.index r) "apoptosis")

let () =
  Alcotest.run "ranked"
    [
      ( "unit",
        [
          Alcotest.test_case "zero scores" `Quick test_scores_zero_without_terms;
          Alcotest.test_case "frequency" `Quick test_more_mentions_score_higher;
          Alcotest.test_case "title weight" `Quick test_title_weighted;
          Alcotest.test_case "search order/limit" `Quick test_search_order_and_limit;
          Alcotest.test_case "rank external" `Quick test_rank_external_set;
          Alcotest.test_case "rejects bad doc" `Quick test_score_rejects_bad_doc;
          Alcotest.test_case "shares index" `Quick test_shares_boolean_index;
        ] );
    ]
