open Bionav_util
open Bionav_core

(* Deep-ish nav tree with enough citations to keep P_x positive. *)
let nav () =
  let parent = [| -1; 0; 1; 1; 0; 4; 4; 2 |] in
  let labels = [| "MeSH"; "a"; "b"; "c"; "d"; "e"; "f"; "g" |] in
  let h = Bionav_mesh.Hierarchy.of_parents ~labels:(fun i -> labels.(i)) parent in
  let attachments =
    List.init 7 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 12 (fun j -> (node * 10) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 500)

let test_static_expand_reveals_children () =
  let s = Navigation.start Navigation.Static (nav ()) in
  let revealed = Navigation.expand s 0 in
  (* Navigation ids are preorder: root children h1 and h4 become 1 and 5. *)
  Alcotest.(check (list int)) "root children" [ 1; 5 ] revealed;
  let stats = Navigation.stats s in
  Alcotest.(check int) "one expand" 1 stats.Navigation.expands;
  Alcotest.(check int) "two revealed" 2 stats.Navigation.revealed

let test_cost_accounting () =
  let s = Navigation.start Navigation.Static (nav ()) in
  ignore (Navigation.expand s 0);
  ignore (Navigation.expand s 1);
  let stats = Navigation.stats s in
  Alcotest.(check int) "expands" 2 stats.Navigation.expands;
  Alcotest.(check int) "revealed" 4 stats.Navigation.revealed;
  Alcotest.(check int) "navigation cost" 6 (Navigation.navigation_cost stats);
  let results = Navigation.show_results s 2 in
  Alcotest.(check int) "listed" (Docset.cardinal results)
    (Navigation.stats s).Navigation.results_listed;
  Alcotest.(check int) "total cost" (6 + Docset.cardinal results)
    (Navigation.total_cost (Navigation.stats s))

let test_expand_on_leaf_component_is_noop () =
  let s = Navigation.start Navigation.Static (nav ()) in
  ignore (Navigation.expand s 0);
  ignore (Navigation.expand s 1);
  ignore (Navigation.expand s 2);
  (* Node 7 ("g") is now a singleton component. *)
  Alcotest.(check (list int)) "noop" [] (Navigation.expand s 7);
  Alcotest.(check int) "not charged" 3 (Navigation.stats s).Navigation.expands

let test_heuristic_expand_valid () =
  let s = Navigation.start (Navigation.bionav ()) (nav ()) in
  let revealed = Navigation.expand s 0 in
  Alcotest.(check bool) "reveals something" true (revealed <> []);
  let active = Navigation.active s in
  List.iter
    (fun v -> Alcotest.(check bool) "revealed nodes visible" true (Active_tree.is_visible active v))
    revealed;
  let record = List.hd (Navigation.stats s).Navigation.history in
  Alcotest.(check int) "record node" 0 record.Navigation.node;
  Alcotest.(check int) "record count" (List.length revealed) record.Navigation.n_revealed;
  Alcotest.(check bool) "reduced size recorded" true (record.Navigation.reduced_size >= 1)

let test_optimal_strategy_small_tree () =
  let s =
    Navigation.start (Navigation.optimal ()) (nav ())
  in
  let revealed = Navigation.expand s 0 in
  Alcotest.(check bool) "reveals" true (revealed <> []);
  let record = List.hd (Navigation.stats s).Navigation.history in
  Alcotest.(check int) "reduced size = component" 8 record.Navigation.reduced_size

let test_heuristic_session_until_exhaustion () =
  (* Expanding everything expandable must terminate with all nodes visible. *)
  let s = Navigation.start (Navigation.bionav ()) (nav ()) in
  let active = Navigation.active s in
  let rec loop guard =
    if guard = 0 then Alcotest.fail "did not converge";
    match List.filter (Active_tree.is_expandable active) (Active_tree.visible active) with
    | [] -> ()
    | r :: _ ->
        let revealed = Navigation.expand s r in
        if revealed = [] then Alcotest.fail "expandable component revealed nothing";
        loop (guard - 1)
  in
  loop 100;
  Alcotest.(check int) "everything revealed" 8 (List.length (Active_tree.visible active))

let test_backtrack_via_session () =
  let s = Navigation.start Navigation.Static (nav ()) in
  ignore (Navigation.expand s 0);
  Alcotest.(check bool) "undone" true (Navigation.backtrack s);
  Alcotest.(check (list int)) "root only" [ 0 ]
    (Active_tree.visible (Navigation.active s));
  Alcotest.(check bool) "empty history exhausted" false
    (Navigation.backtrack s && Navigation.backtrack s)

let test_static_paged_pages () =
  let s = Navigation.start (Navigation.Static_paged { page_size = 1 }) (nav ()) in
  (* Root has two children: two "pages" of one, then nothing more. *)
  let page1 = Navigation.expand s 0 in
  Alcotest.(check int) "first page" 1 (List.length page1);
  let page2 = Navigation.expand s 0 in
  Alcotest.(check int) "second page (the more button)" 1 (List.length page2);
  Alcotest.(check (list int)) "exhausted" [] (Navigation.expand s 0);
  Alcotest.(check int) "two charged expands" 2 (Navigation.stats s).Navigation.expands;
  (* Highest-count child first: h1's subtree holds 4 concepts (48 distinct
     citations) vs h4's 3 (36), so page 1 must be node 1. *)
  Alcotest.(check (list int)) "count-ranked" [ 1 ] page1

let test_static_paged_large_page_equals_static () =
  let paged = Navigation.start (Navigation.Static_paged { page_size = 100 }) (nav ()) in
  let plain = Navigation.start Navigation.Static (nav ()) in
  let a = Navigation.expand paged 0 and b = Navigation.expand plain 0 in
  Alcotest.(check (list int)) "same reveal set" (List.sort Int.compare b)
    (List.sort Int.compare a)

let test_bionav_constructor_defaults () =
  match Navigation.bionav () with
  | Navigation.Heuristic { k; model; reuse } ->
      Alcotest.(check int) "k" Heuristic.default_k k;
      Alcotest.(check int) "thresholds" 50
        model.Probability.params.Probability.upper_threshold;
      Alcotest.(check string) "static fingerprint" Probability.default_model.Probability.fingerprint
        model.Probability.fingerprint;
      Alcotest.(check bool) "reuse off by default" false reuse
  | Navigation.Faceted _ | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _
    ->
      Alcotest.fail "wrong strategy"

let test_reuse_matches_fresh_for_upper_chain () =
  (* Repeatedly expanding the root's upper component must reveal the same
     concepts in the same order with and without plan reuse (the reduced
     tree's masks encode exactly the fresh upper components as long as only
     the upper subtree is expanded). *)
  let run reuse =
    let s = Navigation.start (Navigation.bionav ~reuse ()) (nav ()) in
    let acc = ref [] in
    let rec loop guard =
      if guard > 0 then begin
        let revealed = Navigation.expand s 0 in
        if revealed <> [] then begin
          acc := revealed :: !acc;
          loop (guard - 1)
        end
      end
    in
    loop 20;
    List.rev !acc
  in
  Alcotest.(check (list (list int))) "same reveal sequence" (run false) (run true)

let test_reuse_session_consistency () =
  (* A full reuse-enabled session keeps active-tree invariants: components
     always partition the nodes. *)
  let s = Navigation.start (Navigation.bionav ~reuse:true ()) (nav ()) in
  let active = Navigation.active s in
  let rec loop guard =
    if guard = 0 then Alcotest.fail "did not converge";
    match List.filter (Active_tree.is_expandable active) (Active_tree.visible active) with
    | [] -> ()
    | r :: _ ->
        ignore (Navigation.expand s r);
        let all =
          List.concat_map (Active_tree.component active) (Active_tree.visible active)
        in
        Alcotest.(check (list int)) "partition invariant" (List.init 8 Fun.id)
          (List.sort Int.compare all);
        loop (guard - 1)
  in
  loop 100

let () =
  Alcotest.run "navigation"
    [
      ( "unit",
        [
          Alcotest.test_case "static reveals children" `Quick test_static_expand_reveals_children;
          Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
          Alcotest.test_case "leaf expand noop" `Quick test_expand_on_leaf_component_is_noop;
          Alcotest.test_case "heuristic expand valid" `Quick test_heuristic_expand_valid;
          Alcotest.test_case "optimal strategy" `Quick test_optimal_strategy_small_tree;
          Alcotest.test_case "session exhaustion" `Quick test_heuristic_session_until_exhaustion;
          Alcotest.test_case "backtrack" `Quick test_backtrack_via_session;
          Alcotest.test_case "reuse matches fresh" `Quick test_reuse_matches_fresh_for_upper_chain;
          Alcotest.test_case "reuse session consistency" `Quick test_reuse_session_consistency;
          Alcotest.test_case "static paged pages" `Quick test_static_paged_pages;
          Alcotest.test_case "paged = static at large page" `Quick
            test_static_paged_large_page_equals_static;
          Alcotest.test_case "bionav defaults" `Quick test_bionav_constructor_defaults;
        ] );
    ]
