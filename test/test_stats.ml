open Bionav_util

let feq = Alcotest.(check (float 1e-9))

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  feq "empty" 0. (Stats.mean [||])

let test_variance_stddev () =
  feq "variance" 2. (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  feq "stddev" (sqrt 2.) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  feq "short" 0. (Stats.variance [| 7. |])

let test_median () =
  feq "odd" 3. (Stats.median [| 5.; 1.; 3. |]);
  feq "even" 2.5 (Stats.median [| 4.; 1.; 2.; 3. |]);
  feq "empty" 0. (Stats.median [||])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  feq "p0" 10. (Stats.percentile xs 0.);
  feq "p100" 50. (Stats.percentile xs 100.);
  feq "p50" 30. (Stats.percentile xs 50.);
  feq "p25" 20. (Stats.percentile xs 25.)

let test_percentile_does_not_mutate () =
  let xs = [| 3.; 1.; 2. |] in
  ignore (Stats.percentile xs 50.);
  Alcotest.(check (array (float 1e-9))) "unchanged" [| 3.; 1.; 2. |] xs

let test_min_max_sum () =
  let xs = [| 3.; -1.; 2. |] in
  feq "min" (-1.) (Stats.minimum xs);
  feq "max" 3. (Stats.maximum xs);
  feq "sum" 4. (Stats.sum xs);
  Alcotest.(check int) "sum_int" 6 (Stats.sum_int [| 1; 2; 3 |])

let test_entropy () =
  feq "uniform 2" (log 2.) (Stats.entropy [| 1.; 1. |]);
  feq "certain" 0. (Stats.entropy [| 5.; 0.; 0. |]);
  feq "empty mass" 0. (Stats.entropy [| 0.; 0. |]);
  (* Entropy invariant under scaling. *)
  feq "scale invariant" (Stats.entropy [| 1.; 3. |]) (Stats.entropy [| 10.; 30. |])

let test_normalized_entropy () =
  feq "uniform is 1" 1. (Stats.normalized_entropy [| 2.; 2.; 2. |]);
  feq "single positive" 0. (Stats.normalized_entropy [| 5.; 0. |]);
  let v = Stats.normalized_entropy [| 1.; 9. |] in
  Alcotest.(check bool) "skewed below 1" true (v > 0. && v < 1.)

let test_harmonic () =
  feq "H1" 1. (Stats.harmonic 1);
  feq "H3" (1. +. 0.5 +. (1. /. 3.)) (Stats.harmonic 3);
  feq "H0" 0. (Stats.harmonic 0)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  Alcotest.(check int) "counts total" 4 (c0 + c1);
  Alcotest.(check int) "empty input" 0 (Array.length (Stats.histogram ~bins:3 [||]))

let test_histogram_constant_input () =
  let h = Stats.histogram ~bins:4 [| 5.; 5.; 5. |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 3 total

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies within min/max" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (l, p) ->
      let xs = Array.of_list l in
      let v = Stats.percentile xs p in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let qcheck_entropy_nonneg =
  QCheck.Test.make ~name:"entropy is non-negative" ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) (float_range 0. 50.))
    (fun l -> Stats.entropy (Array.of_list l) >= -1e-12)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile no mutation" `Quick test_percentile_does_not_mutate;
          Alcotest.test_case "min/max/sum" `Quick test_min_max_sum;
          Alcotest.test_case "entropy" `Quick test_entropy;
          Alcotest.test_case "normalized entropy" `Quick test_normalized_entropy;
          Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram constant" `Quick test_histogram_constant_input;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
          QCheck_alcotest.to_alcotest qcheck_entropy_nonneg;
        ] );
    ]
