(* Multi-domain stress for the sharded engine and its supporting
   concurrency primitives (DESIGN.md §11): parallel replay must agree
   with a serial replay expand-for-expand, the domain-safe metrics must
   account for every record exactly, ownership violations must be
   caught when enforcement is on, and the listener/worker queue must
   deliver every accepted item across domains. *)

open Bionav_util
open Bionav_core
module Engine = Bionav_engine.Engine
module Q = Bionav_workload.Queries

let workload = lazy (Q.build ~config:Q.small_config ~seed:5 ())

let engine () =
  let w = Lazy.force workload in
  Engine.create
    ~config:{ Engine.default_config with Engine.shards = 4 }
    ~database:w.Q.database ~eutils:w.Q.eutils ()

(* Run one session to its target under the shard lock (the same bulk
   discipline the web handler and bench use) and return its EXPAND
   count. *)
let drive_session eng q =
  match Engine.search eng q.Q.keyword with
  | Ok (Engine.Session s) ->
      let expands =
        Engine.run_locked s (fun () ->
            let nav = Engine.navigation s in
            ignore (Simulate.to_target nav ~target:q.Q.target_node);
            (Navigation.stats nav).Navigation.expands)
      in
      ignore (Engine.close eng (Engine.session_id s) : bool);
      expands
  | Ok Engine.No_results -> 0
  | Error e -> Alcotest.fail ("search failed: " ^ e)

(* Each domain's schedule: a disjoint round-robin slice of the query
   list plus query 0 shared by everyone, several rounds over. *)
let schedule ~queries ~domains d ~rounds =
  let nq = Array.length queries in
  List.concat_map
    (fun r -> [ queries.((d + (r * domains)) mod nq); queries.(0) ])
    (List.init rounds Fun.id)

let replay_total eng qs = List.fold_left (fun acc q -> acc + drive_session eng q) 0 qs

let test_multi_domain_stress () =
  let w = Lazy.force workload in
  let queries = Array.of_list w.Q.queries in
  let domains = 4 and rounds = 3 in
  (* Serial replay of the union of every domain's schedule: the
     reference expand total. *)
  Metrics.reset ();
  let serial =
    let eng = engine () in
    List.fold_left
      (fun acc d -> acc + replay_total eng (schedule ~queries ~domains d ~rounds))
      0
      (List.init domains Fun.id)
  in
  (* The same schedules, one domain each, against one engine. *)
  Metrics.reset ();
  let eng = engine () in
  let totals =
    Array.map Domain.join
      (Array.init domains (fun d ->
           Domain.spawn (fun () -> replay_total eng (schedule ~queries ~domains d ~rounds))))
  in
  let parallel = Array.fold_left ( + ) 0 totals in
  Alcotest.(check int) "no expand lost or duplicated vs serial replay" serial parallel;
  Alcotest.(check int)
    "global histogram count matches locally-counted expands" parallel
    (Metrics.count (Metrics.histogram "bionav_expand_latency_ms"));
  Alcotest.(check int) "all sessions closed" 0 (Engine.session_count eng)

(* --- lock discipline --------------------------------------------------- *)

(* Regression: a nested [run_locked] (or an engine action inside one)
   used to deadlock on the non-reentrant shard mutex; the engine now
   detects re-entry from the owning domain and raises. *)
let test_reentrant_run_locked () =
  let w = Lazy.force workload in
  let eng = engine () in
  let q = List.hd w.Q.queries in
  match Engine.search eng q.Q.keyword with
  | Ok (Engine.Session s) ->
      let raised =
        Engine.run_locked s (fun () ->
            match Engine.run_locked s (fun () -> ()) with
            | () -> false
            | exception Invalid_argument _ -> true)
      in
      Alcotest.(check bool) "nested run_locked raises Invalid_argument" true raised;
      (* The outer lock must have been released cleanly: the session
         still serves locked actions afterwards. *)
      ignore (Engine.backtrack s : bool);
      Alcotest.(check bool) "session usable after failed re-entry" true
        (Engine.run_locked s (fun () -> true))
  | Ok Engine.No_results -> Alcotest.fail "query unexpectedly empty"
  | Error e -> Alcotest.fail ("search failed: " ^ e)

let test_chaos_requires_single_shard () =
  let w = Lazy.force workload in
  let chaos =
    Bionav_resilience.Chaos.create
      { Bionav_resilience.Chaos.seed = 1;
        error_rate = 0.;
        delay_rate = 0.;
        delay_ms = (0., 0.);
        fail_ops = [] }
  in
  Alcotest.(check bool) "chaos plan with shards > 1 is rejected" true
    (match
       Engine.create
         ~config:{ Engine.default_config with Engine.shards = 2 }
         ~chaos ~database:w.Q.database ~eutils:w.Q.eutils ()
     with
    | (_ : Engine.t) -> false
    | exception Invalid_argument _ -> true);
  (* shards = 1 still accepts a plan — the supported chaos regime. *)
  let eng =
    Engine.create
      ~config:{ Engine.default_config with Engine.shards = 1 }
      ~chaos ~database:w.Q.database ~eutils:w.Q.eutils ()
  in
  Alcotest.(check int) "single-shard chaos engine works" 0 (Engine.session_count eng)

(* --- snapshot isolation ------------------------------------------------ *)

(* Check one published snapshot is a single, internally consistent
   epoch: walking the children edges from the root reaches exactly the
   captured node set, the visible components partition the navigation
   tree's nodes, and every cached cardinal matches its frozen docset. A
   torn mix of epochs trips at least one of these. *)
let assert_consistent snap =
  let module Snap = Bionav_search.Nav_snapshot in
  let nav_size = Nav_tree.size (Snap.nav snap) in
  let seen = ref 0 and members = ref 0 in
  let rec go id =
    incr seen;
    let v = Snap.get snap id in
    members := !members + Array.length v.Snap.members;
    if v.Snap.distinct <> Docset.cardinal v.Snap.results then
      Alcotest.failf "epoch %d: node %d cardinal %d <> |results| %d" (Snap.epoch snap)
        id v.Snap.distinct
        (Docset.cardinal v.Snap.results);
    List.iter go v.Snap.children
  in
  go (Snap.root snap);
  if !seen <> Snap.node_count snap then
    Alcotest.failf "epoch %d: %d nodes reachable, %d captured" (Snap.epoch snap) !seen
      (Snap.node_count snap);
  if !members <> nav_size then
    Alcotest.failf "epoch %d: members cover %d of %d tree nodes" (Snap.epoch snap)
      !members nav_size

(* Readers race writers over shared sessions on 4 domains: two writer
   domains loop expand-to-exhaustion-then-backtrack while two reader
   domains hammer [Engine.snapshot], asserting every observed snapshot
   is internally consistent and that epochs never go backwards within
   one reader's stream of a session. *)
let test_snapshot_isolation_stress () =
  let module Snap = Bionav_search.Nav_snapshot in
  let w = Lazy.force workload in
  let eng = engine () in
  let sessions =
    List.filter_map
      (fun q ->
        match Engine.search eng q.Q.keyword with
        | Ok (Engine.Session s) -> Some s
        | Ok Engine.No_results | Error _ -> None)
      w.Q.queries
  in
  Alcotest.(check bool) "workload produced sessions" true (sessions <> []);
  let sessions = Array.of_list sessions in
  let stop = Atomic.make false in
  let writer d () =
    let rng = Rng.create (40 + d) in
    for _ = 1 to 60 do
      let s = Rng.choice rng sessions in
      let snap = Engine.snapshot s in
      let expandable =
        List.filter (fun id -> (Snap.get snap id).Snap.expandable) (Snap.visible snap)
      in
      match expandable with
      | [] -> ignore (Engine.backtrack s : bool)
      | l -> (
          (* Losing the visibility race to the other writer is fine. *)
          try ignore (Engine.expand s (Rng.choice_list rng l) : int list)
          with Invalid_argument _ -> ())
    done
  in
  let reader d () =
    let rng = Rng.create (80 + d) in
    let last_epoch = Array.map (fun _ -> -1) sessions in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let i = Rng.int rng (Array.length sessions) in
      let snap = Engine.snapshot sessions.(i) in
      assert_consistent snap;
      if Snap.epoch snap < last_epoch.(i) then
        Alcotest.failf "session %d epoch went backwards: %d after %d" i (Snap.epoch snap)
          last_epoch.(i);
      last_epoch.(i) <- Snap.epoch snap;
      incr checks
    done;
    !checks
  in
  let readers = Array.init 2 (fun d -> Domain.spawn (reader d)) in
  let writers = Array.init 2 (fun d -> Domain.spawn (writer d)) in
  Array.iter Domain.join writers;
  Atomic.set stop true;
  let checks = Array.fold_left (fun acc r -> acc + Domain.join r) 0 readers in
  Alcotest.(check bool) "readers observed snapshots" true (checks > 0);
  (* Quiesced: the published epoch equals the session's mutation count
     and one more consistency pass over the final snapshots holds. *)
  Array.iter (fun s -> assert_consistent (Engine.snapshot s)) sessions

(* --- ownership --------------------------------------------------------- *)

let test_ownership_violation () =
  let was = Ownership.enforced () in
  Ownership.set_enforced true;
  Fun.protect
    ~finally:(fun () -> Ownership.set_enforced was)
    (fun () ->
      let arena = Docset_arena.create () in
      (* The creating domain owns the arena: mutation is fine here... *)
      ignore (Docset.of_list_in arena [ 1; 2; 3 ] : Docset.t);
      (* ...and a violation from a foreign domain that never adopted. *)
      let raised =
        Domain.join
          (Domain.spawn (fun () ->
               match Docset.of_list_in arena [ 4; 5 ] with
               | (_ : Docset.t) -> false
               | exception Ownership.Violation _ -> true))
      in
      Alcotest.(check bool) "cross-domain mutation raises Violation" true raised;
      (* An adopting domain (as under the shard lock) may mutate. *)
      let ok =
        Domain.join
          (Domain.spawn (fun () ->
               Docset_arena.adopt arena;
               match Docset.of_list_in arena [ 6 ] with
               | (_ : Docset.t) -> true
               | exception Ownership.Violation _ -> false))
      in
      Alcotest.(check bool) "adoption transfers mutation rights" true ok)

(* --- bounded queue ----------------------------------------------------- *)

let test_queue_capacity_and_close () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bounded_queue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bounded_queue.try_push q 2);
  Alcotest.(check bool) "push on full sheds" false (Bounded_queue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bounded_queue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bounded_queue.pop_opt q);
  Bounded_queue.close q;
  Alcotest.(check bool) "push after close sheds" false (Bounded_queue.try_push q 4);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Bounded_queue.pop_opt q);
  Alcotest.(check (option int)) "None once drained" None (Bounded_queue.pop_opt q);
  Alcotest.(check bool) "create rejects capacity 0" true
    (match Bounded_queue.create ~capacity:0 with
    | (_ : int Bounded_queue.t) -> false
    | exception Invalid_argument _ -> true)

let test_queue_cross_domain_delivery () =
  let q = Bounded_queue.create ~capacity:8 in
  let n = 200 in
  let consumer () =
    let sum = ref 0 and count = ref 0 in
    let rec loop () =
      match Bounded_queue.pop_opt q with
      | None -> ()
      | Some v ->
          sum := !sum + v;
          incr count;
          loop ()
    in
    loop ();
    (!sum, !count)
  in
  let c1 = Domain.spawn consumer and c2 = Domain.spawn consumer in
  let pushed = ref 0 in
  for i = 1 to n do
    (* The producer retries on a full queue — the web listener sheds
       instead, but here we want every item delivered exactly once. *)
    while not (Bounded_queue.try_push q i) do
      Domain.cpu_relax ()
    done;
    pushed := !pushed + i
  done;
  Bounded_queue.close q;
  let s1, k1 = Domain.join c1 and s2, k2 = Domain.join c2 in
  Alcotest.(check int) "every item delivered exactly once" !pushed (s1 + s2);
  Alcotest.(check int) "item count" n (k1 + k2)

let () =
  Alcotest.run "parallel"
    [
      ( "engine",
        [
          Alcotest.test_case "multi-domain stress vs serial replay" `Quick test_multi_domain_stress;
          Alcotest.test_case "reentrant run_locked raises" `Quick test_reentrant_run_locked;
          Alcotest.test_case "chaos requires single shard" `Quick test_chaos_requires_single_shard;
        ] );
      ( "snapshots",
        [ Alcotest.test_case "isolation under 4 domains" `Quick test_snapshot_isolation_stress ] );
      ( "ownership",
        [ Alcotest.test_case "violation + adoption" `Quick test_ownership_violation ] );
      ( "bounded_queue",
        [
          Alcotest.test_case "capacity and close" `Quick test_queue_capacity_and_close;
          Alcotest.test_case "cross-domain delivery" `Quick test_queue_cross_domain_delivery;
        ] );
    ]
