(* Multi-domain stress for the sharded engine and its supporting
   concurrency primitives (DESIGN.md §11): parallel replay must agree
   with a serial replay expand-for-expand, the domain-safe metrics must
   account for every record exactly, ownership violations must be
   caught when enforcement is on, and the listener/worker queue must
   deliver every accepted item across domains. *)

open Bionav_util
open Bionav_core
module Engine = Bionav_engine.Engine
module Q = Bionav_workload.Queries

let workload = lazy (Q.build ~config:Q.small_config ~seed:5 ())

let engine () =
  let w = Lazy.force workload in
  Engine.create
    ~config:{ Engine.default_config with Engine.shards = 4 }
    ~database:w.Q.database ~eutils:w.Q.eutils ()

(* Run one session to its target under the shard lock (the same bulk
   discipline the web handler and bench use) and return its EXPAND
   count. *)
let drive_session eng q =
  match Engine.search eng q.Q.keyword with
  | Ok (Engine.Session s) ->
      let expands =
        Engine.run_locked s (fun () ->
            let nav = Engine.navigation s in
            ignore (Simulate.to_target nav ~target:q.Q.target_node);
            (Navigation.stats nav).Navigation.expands)
      in
      ignore (Engine.close eng (Engine.session_id s) : bool);
      expands
  | Ok Engine.No_results -> 0
  | Error e -> Alcotest.fail ("search failed: " ^ e)

(* Each domain's schedule: a disjoint round-robin slice of the query
   list plus query 0 shared by everyone, several rounds over. *)
let schedule ~queries ~domains d ~rounds =
  let nq = Array.length queries in
  List.concat_map
    (fun r -> [ queries.((d + (r * domains)) mod nq); queries.(0) ])
    (List.init rounds Fun.id)

let replay_total eng qs = List.fold_left (fun acc q -> acc + drive_session eng q) 0 qs

let test_multi_domain_stress () =
  let w = Lazy.force workload in
  let queries = Array.of_list w.Q.queries in
  let domains = 4 and rounds = 3 in
  (* Serial replay of the union of every domain's schedule: the
     reference expand total. *)
  Metrics.reset ();
  let serial =
    let eng = engine () in
    List.fold_left
      (fun acc d -> acc + replay_total eng (schedule ~queries ~domains d ~rounds))
      0
      (List.init domains Fun.id)
  in
  (* The same schedules, one domain each, against one engine. *)
  Metrics.reset ();
  let eng = engine () in
  let totals =
    Array.map Domain.join
      (Array.init domains (fun d ->
           Domain.spawn (fun () -> replay_total eng (schedule ~queries ~domains d ~rounds))))
  in
  let parallel = Array.fold_left ( + ) 0 totals in
  Alcotest.(check int) "no expand lost or duplicated vs serial replay" serial parallel;
  Alcotest.(check int)
    "global histogram count matches locally-counted expands" parallel
    (Metrics.count (Metrics.histogram "bionav_expand_latency_ms"));
  Alcotest.(check int) "all sessions closed" 0 (Engine.session_count eng)

(* --- ownership --------------------------------------------------------- *)

let test_ownership_violation () =
  let was = Ownership.enforced () in
  Ownership.set_enforced true;
  Fun.protect
    ~finally:(fun () -> Ownership.set_enforced was)
    (fun () ->
      let arena = Docset_arena.create () in
      (* The creating domain owns the arena: mutation is fine here... *)
      ignore (Docset.of_list_in arena [ 1; 2; 3 ] : Docset.t);
      (* ...and a violation from a foreign domain that never adopted. *)
      let raised =
        Domain.join
          (Domain.spawn (fun () ->
               match Docset.of_list_in arena [ 4; 5 ] with
               | (_ : Docset.t) -> false
               | exception Ownership.Violation _ -> true))
      in
      Alcotest.(check bool) "cross-domain mutation raises Violation" true raised;
      (* An adopting domain (as under the shard lock) may mutate. *)
      let ok =
        Domain.join
          (Domain.spawn (fun () ->
               Docset_arena.adopt arena;
               match Docset.of_list_in arena [ 6 ] with
               | (_ : Docset.t) -> true
               | exception Ownership.Violation _ -> false))
      in
      Alcotest.(check bool) "adoption transfers mutation rights" true ok)

(* --- bounded queue ----------------------------------------------------- *)

let test_queue_capacity_and_close () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bounded_queue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bounded_queue.try_push q 2);
  Alcotest.(check bool) "push on full sheds" false (Bounded_queue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bounded_queue.length q);
  Alcotest.(check (option int)) "fifo pop" (Some 1) (Bounded_queue.pop_opt q);
  Bounded_queue.close q;
  Alcotest.(check bool) "push after close sheds" false (Bounded_queue.try_push q 4);
  Alcotest.(check (option int)) "drains after close" (Some 2) (Bounded_queue.pop_opt q);
  Alcotest.(check (option int)) "None once drained" None (Bounded_queue.pop_opt q);
  Alcotest.(check bool) "create rejects capacity 0" true
    (match Bounded_queue.create ~capacity:0 with
    | (_ : int Bounded_queue.t) -> false
    | exception Invalid_argument _ -> true)

let test_queue_cross_domain_delivery () =
  let q = Bounded_queue.create ~capacity:8 in
  let n = 200 in
  let consumer () =
    let sum = ref 0 and count = ref 0 in
    let rec loop () =
      match Bounded_queue.pop_opt q with
      | None -> ()
      | Some v ->
          sum := !sum + v;
          incr count;
          loop ()
    in
    loop ();
    (!sum, !count)
  in
  let c1 = Domain.spawn consumer and c2 = Domain.spawn consumer in
  let pushed = ref 0 in
  for i = 1 to n do
    (* The producer retries on a full queue — the web listener sheds
       instead, but here we want every item delivered exactly once. *)
    while not (Bounded_queue.try_push q i) do
      Domain.cpu_relax ()
    done;
    pushed := !pushed + i
  done;
  Bounded_queue.close q;
  let s1, k1 = Domain.join c1 and s2, k2 = Domain.join c2 in
  Alcotest.(check int) "every item delivered exactly once" !pushed (s1 + s2);
  Alcotest.(check int) "item count" n (k1 + k2)

let () =
  Alcotest.run "parallel"
    [
      ( "engine",
        [ Alcotest.test_case "multi-domain stress vs serial replay" `Quick test_multi_domain_stress ] );
      ( "ownership",
        [ Alcotest.test_case "violation + adoption" `Quick test_ownership_violation ] );
      ( "bounded_queue",
        [
          Alcotest.test_case "capacity and close" `Quick test_queue_capacity_and_close;
          Alcotest.test_case "cross-domain delivery" `Quick test_queue_cross_domain_delivery;
        ] );
    ]
