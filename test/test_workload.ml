open Bionav_core
module Q = Bionav_workload.Queries
module E = Bionav_workload.Experiment
module R = Bionav_workload.Report
module H = Bionav_mesh.Hierarchy

let workload = lazy (Q.build ~config:Q.small_config ~seed:81 ())

let runs = lazy (E.run_all (Lazy.force workload))

let test_builds_all_queries () =
  let w = Lazy.force workload in
  Alcotest.(check int) "query count" (List.length Q.small_config.Q.specs)
    (List.length w.Q.queries)

let test_result_sizes_near_spec () =
  let w = Lazy.force workload in
  List.iter
    (fun q ->
      let spec = q.Q.spec in
      let n = Q.result_count q in
      (* Tag retrieval may pick up a handful of extra citations, never fewer. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d vs %d" spec.Q.name n spec.Q.result_size)
        true
        (n >= spec.Q.result_size && n <= spec.Q.result_size + (spec.Q.result_size / 5)))
    w.Q.queries

let test_targets_are_valid_nodes () =
  let w = Lazy.force workload in
  List.iter
    (fun q ->
      let nav = q.Q.nav in
      Alcotest.(check bool) "in range" true
        (q.Q.target_node > 0 && q.Q.target_node < Nav_tree.size nav);
      Alcotest.(check bool) "has results" true (Nav_tree.result_count nav q.Q.target_node > 0);
      Alcotest.(check int) "concept consistent" q.Q.target_concept
        (Nav_tree.concept_id nav q.Q.target_node))
    w.Q.queries

let test_targets_unrelated_to_cluster () =
  let w = Lazy.force workload in
  List.iter
    (fun q ->
      List.iter
        (fun line ->
          Alcotest.(check bool) "not a line concept" true (q.Q.target_concept <> line);
          Alcotest.(check bool) "not an ancestor" false
            (H.is_ancestor w.Q.hierarchy q.Q.target_concept line);
          Alcotest.(check bool) "not a descendant" false
            (H.is_ancestor w.Q.hierarchy line q.Q.target_concept))
        q.Q.cluster)
    w.Q.queries

let test_table1_columns () =
  let w = Lazy.force workload in
  List.iter
    (fun q ->
      Alcotest.(check bool) "tree smaller than hierarchy" true
        (Q.tree_size q < H.size w.Q.hierarchy);
      Alcotest.(check bool) "duplicates exceed distinct" true
        (Q.citations_with_duplicates q > Q.result_count q);
      Alcotest.(check bool) "LT >= L" true (Q.target_lt q >= Q.target_l q);
      Alcotest.(check bool) "height positive" true (Q.tree_height q > 0);
      Alcotest.(check bool) "width positive" true (Q.max_width q > 0))
    w.Q.queries

let test_deterministic_build () =
  let a = Q.build ~config:Q.small_config ~seed:99 () in
  let b = Q.build ~config:Q.small_config ~seed:99 () in
  List.iter2
    (fun qa qb ->
      Alcotest.(check int) "same results" (Q.result_count qa) (Q.result_count qb);
      Alcotest.(check int) "same target" qa.Q.target_concept qb.Q.target_concept)
    a.Q.queries b.Q.queries

let test_runs_complete () =
  let rs = Lazy.force runs in
  List.iter
    (fun r ->
      Alcotest.(check bool) "static positive" true
        (r.E.static.Simulate.navigation_cost > 0);
      Alcotest.(check bool) "bionav positive" true
        (r.E.bionav.Simulate.navigation_cost > 0))
    rs

let test_bionav_wins_on_average () =
  let rs = Lazy.force runs in
  Alcotest.(check bool) "average improvement positive" true (E.average_improvement rs > 0.)

let test_improvement_formula () =
  let rs = Lazy.force runs in
  let r = List.hd rs in
  let expected =
    1.
    -. float_of_int r.E.bionav.Simulate.navigation_cost
       /. float_of_int r.E.static.Simulate.navigation_cost
  in
  Alcotest.(check (float 1e-9)) "formula" expected (E.improvement r)

let test_mean_expand_ms () =
  let rs = Lazy.force runs in
  List.iter
    (fun r -> Alcotest.(check bool) "non-negative" true (E.mean_expand_ms r.E.bionav >= 0.))
    rs

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_reports_render () =
  let w = Lazy.force workload in
  let rs = Lazy.force runs in
  let t1 = R.table1 w in
  Alcotest.(check bool) "table1 mentions queries" true (contains ~sub:"prothymosin" t1);
  let f8 = R.fig8 rs in
  Alcotest.(check bool) "fig8 improvement line" true (contains ~sub:"Average improvement" f8);
  let f9 = R.fig9 rs in
  Alcotest.(check bool) "fig9 header" true (contains ~sub:"EXPAND" f9);
  let f10 = R.fig10 rs in
  Alcotest.(check bool) "fig10 header" true (contains ~sub:"execution time" f10);
  let f11 = R.fig11 (List.hd rs) in
  Alcotest.(check bool) "fig11 partitions" true (contains ~sub:"partitions" f11)

let test_csv_exports () =
  let w = Lazy.force workload in
  let rs = Lazy.force runs in
  let t1 = R.table1_csv w in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' t1) in
  Alcotest.(check int) "header + one row per query" (1 + List.length w.Q.queries)
    (List.length lines);
  Alcotest.(check bool) "header first" true (contains ~sub:"query,results" (List.hd lines));
  let f8 = R.fig8_csv rs in
  Alcotest.(check bool) "fig8 columns" true (contains ~sub:"static_cost,bionav_cost" f8);
  let f11 = R.fig11_csv (List.hd rs) in
  Alcotest.(check bool) "fig11 columns" true (contains ~sub:"step,partitions" f11);
  (* Quoting: a label with a comma must be quoted somewhere in table1. *)
  List.iter
    (fun q ->
      let name = q.Q.spec.Q.target_name in
      if String.contains name ',' then
        Alcotest.(check bool) "quoted label" true (contains ~sub:("\"" ^ name ^ "\"") t1))
    w.Q.queries

let () =
  Alcotest.run "workload"
    [
      ( "queries",
        [
          Alcotest.test_case "builds all" `Quick test_builds_all_queries;
          Alcotest.test_case "result sizes" `Quick test_result_sizes_near_spec;
          Alcotest.test_case "targets valid" `Quick test_targets_are_valid_nodes;
          Alcotest.test_case "targets unrelated" `Quick test_targets_unrelated_to_cluster;
          Alcotest.test_case "table1 columns" `Quick test_table1_columns;
          Alcotest.test_case "deterministic" `Quick test_deterministic_build;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "runs complete" `Quick test_runs_complete;
          Alcotest.test_case "bionav wins on average" `Quick test_bionav_wins_on_average;
          Alcotest.test_case "improvement formula" `Quick test_improvement_formula;
          Alcotest.test_case "mean expand ms" `Quick test_mean_expand_ms;
        ] );
      ( "reports",
        [
          Alcotest.test_case "render" `Quick test_reports_render;
          Alcotest.test_case "csv exports" `Quick test_csv_exports;
        ] );
    ]
