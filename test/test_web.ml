open Bionav_util
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils
module Html = Bionav_web.Html
module Http = Bionav_web.Http
module App = Bionav_web.App

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* --- Html --- *)

let test_escape () =
  Alcotest.(check string) "all specials" "&amp;&lt;&gt;&quot;&#39;" (Html.escape "&<>\"'");
  Alcotest.(check string) "plain untouched" "hello" (Html.escape "hello")

let test_tag_and_link () =
  Alcotest.(check string) "tag" "<p class=\"x\">body</p>"
    (Html.tag ~attrs:[ ("class", "x") ] "p" "body");
  Alcotest.(check string) "attr escaped" "<p title=\"a&quot;b\"></p>"
    (Html.tag ~attrs:[ ("title", "a\"b") ] "p" "");
  Alcotest.(check string) "link label escaped" "<a href=\"/x\">a&lt;b</a>"
    (Html.link ~href:"/x" "a<b")

let test_url_encoding () =
  Alcotest.(check string) "plain" "/p" (Html.url "/p" []);
  Alcotest.(check string) "params" "/p?q=a+b&x=1%2F2"
    (Html.url "/p" [ ("q", "a b"); ("x", "1/2") ])

let test_page_shape () =
  let p = Html.page ~title:"T<" "BODY" in
  Alcotest.(check bool) "doctype" true (contains ~sub:"<!DOCTYPE html>" p);
  Alcotest.(check bool) "escaped title" true (contains ~sub:"T&lt;" p);
  Alcotest.(check bool) "body" true (contains ~sub:"BODY" p)

(* --- Http parsing --- *)

let test_url_decode () =
  Alcotest.(check string) "plus" "a b" (Http.url_decode "a+b");
  Alcotest.(check string) "percent" "a/b" (Http.url_decode "a%2Fb");
  Alcotest.(check string) "malformed passes through" "a%zz" (Http.url_decode "a%zz");
  Alcotest.(check string) "roundtrip" "x y/z"
    (Http.url_decode (String.concat "" [ "x"; "+"; "y"; "%2F"; "z" ]))

let test_url_decode_malformed () =
  Alcotest.(check string) "lone percent" "%" (Http.url_decode "%");
  Alcotest.(check string) "trailing percent" "a%" (Http.url_decode "a%");
  Alcotest.(check string) "one hex digit at end" "%2" (Http.url_decode "%2");
  Alcotest.(check string) "bad second digit" "%2Gx" (Http.url_decode "%2Gx");
  Alcotest.(check string) "bad first digit" "%zz" (Http.url_decode "%zz");
  Alcotest.(check string) "recovers after bad escape" "%zz c" (Http.url_decode "%zz+c");
  Alcotest.(check string) "percent-encoded percent" "100%" (Http.url_decode "100%25")

let test_plus_in_path () =
  (* '+' is an ordinary character in a path; the form rule applies to
     query components only. *)
  Alcotest.(check (pair string (list (pair string string)))) "path plus survives"
    ("/a+b", [ ("q", "c d") ])
    (Http.parse_target "/a+b?q=c+d");
  Alcotest.(check (pair string (list (pair string string)))) "path percent decodes"
    ("/a b", [])
    (Http.parse_target "/a%20b")

let test_repeated_keys () =
  let _, params = Http.parse_target "/a?k=1&k=2&k=3&other=x" in
  Alcotest.(check (list (pair string string))) "all occurrences kept in order"
    [ ("k", "1"); ("k", "2"); ("k", "3"); ("other", "x") ]
    params;
  Alcotest.(check (option string)) "assoc sees the first" (Some "1") (List.assoc_opt "k" params)

let qcheck_url_roundtrip =
  QCheck.Test.make ~name:"Html.url encode -> parse_target decode roundtrip" ~count:500
    QCheck.(pair string string)
    (fun (k, v) ->
      Http.parse_target (Html.url "/p" [ (k, v) ]) = ("/p", [ (k, v) ]))

let qcheck_url_decode_total =
  QCheck.Test.make ~name:"url_decode never raises" ~count:500 QCheck.string (fun s ->
      ignore (Http.url_decode s : string);
      ignore (Http.url_decode_component ~plus_as_space:false s : string);
      true)

let test_parse_target () =
  Alcotest.(check (pair string (list (pair string string)))) "no query" ("/a", [])
    (Http.parse_target "/a");
  Alcotest.(check (pair string (list (pair string string)))) "with query"
    ("/a", [ ("x", "1"); ("y", "b c") ])
    (Http.parse_target "/a?x=1&y=b%20c");
  Alcotest.(check (pair string (list (pair string string)))) "flag param"
    ("/a", [ ("flag", "") ])
    (Http.parse_target "/a?flag")

let test_parse_request_line () =
  Alcotest.(check (option (pair string string))) "get" (Some ("GET", "/x?y=1"))
    (Http.parse_request_line "GET /x?y=1 HTTP/1.1\r");
  Alcotest.(check (option (pair string string))) "garbage" None
    (Http.parse_request_line "nonsense")

let test_render_response () =
  let r = Http.render_response (Http.ok "hi") in
  Alcotest.(check bool) "status line" true (contains ~sub:"HTTP/1.1 200 OK" r);
  Alcotest.(check bool) "length" true (contains ~sub:"Content-Length: 2" r);
  Alcotest.(check bool) "body" true (contains ~sub:"\r\n\r\nhi" r)

(* --- App flows --- *)

let app_fixture =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:121 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 600;
         seeded_groups =
           [
             {
               G.tag = Some "webtag";
               cluster = [ List.nth deep 0; List.nth deep 9 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:122 h in
     App.create ~suggestions:[ "webtag" ] ~database:(DB.of_medline m) ~eutils:(Eu.create m) ())

let get app path query = App.handle app ~path ~query

let test_home () =
  let app = Lazy.force app_fixture in
  let r = get app "/" [] in
  Alcotest.(check int) "200" 200 r.Http.status;
  Alcotest.(check bool) "form" true (contains ~sub:"<form" r.Http.body);
  Alcotest.(check bool) "suggestion" true (contains ~sub:"webtag" r.Http.body)

let test_unknown_route () =
  let app = Lazy.force app_fixture in
  Alcotest.(check int) "404" 404 (get app "/nope" []).Http.status

let test_search_creates_session () =
  let app = Lazy.force app_fixture in
  let before = App.session_count app in
  let r = get app "/search" [ ("q", "webtag") ] in
  Alcotest.(check int) "200" 200 r.Http.status;
  Alcotest.(check int) "session created" (before + 1) (App.session_count app);
  Alcotest.(check bool) "tree rendered" true (contains ~sub:"MeSH" r.Http.body);
  Alcotest.(check bool) "expand link" true (contains ~sub:"/expand?" r.Http.body)

let test_search_no_results () =
  let app = Lazy.force app_fixture in
  let r = get app "/search" [ ("q", "zzzznotaword") ] in
  Alcotest.(check int) "still 200" 200 r.Http.status;
  Alcotest.(check bool) "message" true (contains ~sub:"No results" r.Http.body)

let test_search_validation () =
  let app = Lazy.force app_fixture in
  Alcotest.(check int) "missing q" 400 (get app "/search" []).Http.status;
  Alcotest.(check int) "bad strategy" 400
    (get app "/search" [ ("q", "webtag"); ("strategy", "wat") ]).Http.status

let test_page_size_validation () =
  let app = Lazy.force app_fixture in
  Alcotest.(check int) "zero page size" 400
    (get app "/search" [ ("q", "webtag"); ("strategy", "paged"); ("page_size", "0") ])
      .Http.status;
  Alcotest.(check int) "negative page size" 400
    (get app "/search" [ ("q", "webtag"); ("strategy", "paged"); ("page_size", "-2") ])
      .Http.status;
  Alcotest.(check int) "malformed page size" 400
    (get app "/search" [ ("q", "webtag"); ("strategy", "paged"); ("page_size", "ten") ])
      .Http.status;
  Alcotest.(check int) "valid page size" 200
    (get app "/search" [ ("q", "webtag"); ("strategy", "paged"); ("page_size", "5") ])
      .Http.status

let test_metrics_route () =
  let app = Lazy.force app_fixture in
  ignore (get app "/search" [ ("q", "webtag") ]);
  let r = get app "/metrics" [] in
  Alcotest.(check int) "200" 200 r.Http.status;
  Alcotest.(check bool) "plaintext" true
    (contains ~sub:"text/plain" r.Http.content_type);
  Alcotest.(check bool) "session counter present" true
    (contains ~sub:"bionav_sessions_started_total" r.Http.body);
  Alcotest.(check bool) "live gauge present" true
    (contains ~sub:"bionav_sessions_live" r.Http.body);
  Alcotest.(check bool) "not html" false (contains ~sub:"<html" r.Http.body)

(* Extract the first sid/node pair of a [route] link from a page. *)
let find_link_params ~route body =
  let marker = route ^ "?sid=" in
  let rec find i =
    if i + String.length marker >= String.length body then None
    else if String.sub body i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let rest = String.sub body i (min 80 (String.length body - i)) in
      (* link shape: /expand?sid=s0&amp;node=12 followed by a quote *)
      let after = String.sub rest (String.length marker) (String.length rest - String.length marker) in
      let sid = String.sub after 0 (String.index after '&') in
      let node_marker = "node=" in
      let rec findn j =
        if String.sub after j (String.length node_marker) = node_marker then j else findn (j + 1)
      in
      let j = findn 0 + String.length node_marker in
      let k = ref j in
      while !k < String.length after && after.[!k] >= '0' && after.[!k] <= '9' do incr k done;
      Some (sid, int_of_string (String.sub after j (!k - j)))

let find_expand_params body = find_link_params ~route:"/expand" body

let test_expand_show_back_flow () =
  let app = Lazy.force app_fixture in
  let r = get app "/search" [ ("q", "webtag") ] in
  match find_expand_params r.Http.body with
  | None -> Alcotest.fail "no expand link on fresh session"
  | Some (sid, node) ->
      let r2 = get app "/expand" [ ("sid", sid); ("node", string_of_int node) ] in
      Alcotest.(check int) "expand ok" 200 r2.Http.status;
      Alcotest.(check bool) "more nodes shown" true
        (String.length r2.Http.body > String.length r.Http.body);
      let r3 = get app "/show" [ ("sid", sid); ("node", string_of_int node) ] in
      Alcotest.(check int) "show ok" 200 r3.Http.status;
      Alcotest.(check bool) "citations listed" true (contains ~sub:"citation" r3.Http.body);
      let r4 = get app "/back" [ ("sid", sid) ] in
      Alcotest.(check int) "back ok" 200 r4.Http.status

let test_session_validation () =
  let app = Lazy.force app_fixture in
  Alcotest.(check int) "missing sid" 400 (get app "/session" []).Http.status;
  Alcotest.(check int) "unknown sid" 404
    (get app "/session" [ ("sid", "nope") ]).Http.status;
  let r = get app "/search" [ ("q", "webtag") ] in
  match find_expand_params r.Http.body with
  | None -> Alcotest.fail "no expand link"
  | Some (sid, _) ->
      Alcotest.(check int) "bad node" 400
        (get app "/expand" [ ("sid", sid); ("node", "xyz") ]).Http.status;
      Alcotest.(check int) "node out of range" 400
        (get app "/expand" [ ("sid", sid); ("node", "999999") ]).Http.status

let test_refine_unrefine_flow () =
  let app = Lazy.force app_fixture in
  let r = get app "/search" [ ("q", "webtag") ] in
  match find_expand_params r.Http.body with
  | None -> Alcotest.fail "no expand link"
  | Some (sid, node) ->
      let r2 = get app "/expand" [ ("sid", sid); ("node", string_of_int node) ] in
      (match find_link_params ~route:"/refine" r2.Http.body with
      | None -> Alcotest.fail "no refine link after expand"
      | Some (sid', rnode) ->
          Alcotest.(check string) "refine link targets same session" sid sid';
          let r3 = get app "/refine" [ ("sid", sid); ("node", string_of_int rnode) ] in
          Alcotest.(check int) "refine ok" 200 r3.Http.status;
          Alcotest.(check bool) "derived space in bar" true
            (contains ~sub:"refine:" r3.Http.body);
          Alcotest.(check bool) "depth shown" true (contains ~sub:"(depth 1)" r3.Http.body);
          Alcotest.(check bool) "undo link offered" true
            (contains ~sub:"/unrefine?" r3.Http.body);
          let r4 = get app "/unrefine" [ ("sid", sid) ] in
          Alcotest.(check int) "unrefine ok" 200 r4.Http.status;
          Alcotest.(check bool) "base space restored" false
            (contains ~sub:"refine:" r4.Http.body);
          Alcotest.(check bool) "depth back to 0" true
            (contains ~sub:"(depth 0)" r4.Http.body))

let test_facets_flow () =
  let app = Lazy.force app_fixture in
  let r = get app "/search" [ ("q", "webtag") ] in
  match find_expand_params r.Http.body with
  | None -> Alcotest.fail "no expand link"
  | Some (sid, _) ->
      let r2 = get app "/facets" [ ("sid", sid) ] in
      Alcotest.(check int) "facets ok" 200 r2.Http.status;
      Alcotest.(check bool) "facet space in bar" true
        (contains ~sub:"&gt;facets (depth 1)" r2.Http.body);
      (* Cutting along the qualifier dimension twice is refused, not crashed. *)
      Alcotest.(check int) "facet of facet rejected" 400
        (get app "/facets" [ ("sid", sid) ]).Http.status;
      let r3 = get app "/unrefine" [ ("sid", sid) ] in
      Alcotest.(check int) "unrefine pops facet space" 200 r3.Http.status;
      Alcotest.(check bool) "base space restored" true
        (contains ~sub:"(depth 0)" r3.Http.body)

let test_space_route_validation () =
  let app = Lazy.force app_fixture in
  Alcotest.(check int) "refine missing sid" 400 (get app "/refine" []).Http.status;
  Alcotest.(check int) "unrefine missing sid" 400 (get app "/unrefine" []).Http.status;
  Alcotest.(check int) "facets missing sid" 400 (get app "/facets" []).Http.status;
  Alcotest.(check int) "refine unknown sid" 404
    (get app "/refine" [ ("sid", "nope"); ("node", "1") ]).Http.status;
  let r = get app "/search" [ ("q", "webtag") ] in
  match find_expand_params r.Http.body with
  | None -> Alcotest.fail "no expand link"
  | Some (sid, _) ->
      Alcotest.(check int) "refine malformed node" 400
        (get app "/refine" [ ("sid", sid); ("node", "xyz") ]).Http.status;
      Alcotest.(check int) "refine node out of range" 400
        (get app "/refine" [ ("sid", sid); ("node", "999999") ]).Http.status;
      (* Unrefining the base space is a harmless no-op, not an error. *)
      Alcotest.(check int) "unrefine at depth 0" 200
        (get app "/unrefine" [ ("sid", sid) ]).Http.status

let test_handler_never_raises () =
  let app = Lazy.force app_fixture in
  let rng = Rng.create 5 in
  let paths =
    [|
      "/"; "/search"; "/session"; "/expand"; "/show"; "/back"; "/refine";
      "/unrefine"; "/facets"; "/junk";
    |]
  in
  let keys = [| "q"; "sid"; "node"; "strategy"; "bogus" |] in
  let values = [| ""; "webtag"; "s0"; "-3"; "999999"; "drop table"; "%%%" |] in
  for _ = 1 to 500 do
    let path = Rng.choice rng paths in
    let query =
      List.init (Rng.int rng 3) (fun _ -> (Rng.choice rng keys, Rng.choice rng values))
    in
    let r = App.handle app ~path ~query in
    if not (List.mem r.Http.status [ 200; 400; 404 ]) then
      Alcotest.fail (Printf.sprintf "unexpected status %d for %s" r.Http.status path)
  done

(* --- Hardening: drive the full read/respond path over a socketpair --- *)

let hello_handler ~path:_ ~query:_ = Http.ok "hello"

let with_socketpair f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ client; server ])
    (fun () -> f client server)

let read_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
  in
  loop ();
  Buffer.contents buf

(* Send a complete request, let the server respond, close the server end,
   then drain what the client sees. *)
let exchange ?config request =
  with_socketpair (fun client server ->
      ignore (Unix.write_substring client request 0 (String.length request));
      Unix.shutdown client Unix.SHUTDOWN_SEND;
      Http.handle_connection ?config hello_handler server;
      (* Shutdown, not close: closing with unread request bytes still in
         the server's receive buffer resets the connection and can
         discard the buffered response before the client reads it. *)
      Unix.shutdown server Unix.SHUTDOWN_SEND;
      read_all client)

let test_socket_roundtrip () =
  let reply = exchange "GET /x HTTP/1.1\r\n\r\n" in
  Alcotest.(check bool) "200 over the wire" true (contains ~sub:"HTTP/1.1 200 OK" reply);
  Alcotest.(check bool) "body served" true (contains ~sub:"hello" reply)

let test_oversized_request_line_rejected () =
  let oversized = Metrics.counter "bionav_resilience_oversized_requests_total" in
  let before = Metrics.value oversized in
  let config = { Http.default_server_config with Http.max_request_line = 32 } in
  let reply = exchange ~config ("GET /" ^ String.make 100 'a' ^ " HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "400 over the wire" true (contains ~sub:"HTTP/1.1 400" reply);
  Alcotest.(check bool) "reason given" true (contains ~sub:"request too long" reply);
  Alcotest.(check int) "rejection counted" (before + 1) (Metrics.value oversized);
  (* The same line fits under the default bound. *)
  let ok = exchange ("GET /" ^ String.make 100 'a' ^ " HTTP/1.1\r\n\r\n") in
  Alcotest.(check bool) "fits default bound" true (contains ~sub:"HTTP/1.1 200 OK" ok)

let test_truncated_request_times_out () =
  let timeouts = Metrics.counter "bionav_resilience_request_timeouts_total" in
  let before = Metrics.value timeouts in
  let config = { Http.default_server_config with Http.read_timeout_ms = 50. } in
  let reply =
    with_socketpair (fun client server ->
        (* A peer that sends half a request line and then goes silent —
           without shutting down, so a read would block forever were it
           not for the socket deadline. *)
        let partial = "GET /x HT" in
        ignore (Unix.write_substring client partial 0 (String.length partial));
        Http.handle_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check bool) "408 over the wire" true (contains ~sub:"HTTP/1.1 408" reply);
  Alcotest.(check int) "timeout counted" (before + 1) (Metrics.value timeouts)

let test_shed_connection_sends_503 () =
  let shed = Metrics.counter "bionav_resilience_shed_connections_total" in
  let before = Metrics.value shed in
  let reply =
    with_socketpair (fun client server ->
        Http.shed_connection server;
        read_all client)
  in
  Alcotest.(check bool) "503 over the wire" true (contains ~sub:"HTTP/1.1 503" reply);
  Alcotest.(check bool) "reason given" true (contains ~sub:"Service Unavailable" reply);
  Alcotest.(check int) "shed counted" (before + 1) (Metrics.value shed)

(* --- Worker-domain pool: end-to-end over real sockets --- *)

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      Unix.shutdown sock Unix.SHUTDOWN_SEND;
      read_all sock)

let test_multi_domain_serve () =
  let n = 6 in
  let port = Atomic.make 0 in
  let hits = Atomic.make 0 in
  let handler ~path:_ ~query:_ =
    Atomic.incr hits;
    Http.ok "pooled"
  in
  let config = { Http.default_server_config with Http.domains = 2 } in
  let server =
    Domain.spawn (fun () ->
        Http.serve ~config
          ~on_ready:(fun ~port:p -> Atomic.set port p)
          ~max_requests:n ~port:0 handler)
  in
  while Atomic.get port = 0 do
    Domain.cpu_relax ()
  done;
  let p = Atomic.get port in
  for i = 1 to n do
    let reply = http_get ~port:p (Printf.sprintf "/r%d" i) in
    Alcotest.(check bool) "200 over the wire" true (contains ~sub:"HTTP/1.1 200 OK" reply);
    Alcotest.(check bool) "body served" true (contains ~sub:"pooled" reply)
  done;
  Domain.join server;
  Alcotest.(check int) "every request reached the handler" n (Atomic.get hits)

let () =
  Alcotest.run "web"
    [
      ( "html",
        [
          Alcotest.test_case "escape" `Quick test_escape;
          Alcotest.test_case "tag/link" `Quick test_tag_and_link;
          Alcotest.test_case "url encoding" `Quick test_url_encoding;
          Alcotest.test_case "page" `Quick test_page_shape;
        ] );
      ( "http",
        [
          Alcotest.test_case "url decode" `Quick test_url_decode;
          Alcotest.test_case "malformed escapes" `Quick test_url_decode_malformed;
          Alcotest.test_case "plus in path" `Quick test_plus_in_path;
          Alcotest.test_case "repeated keys" `Quick test_repeated_keys;
          Alcotest.test_case "parse target" `Quick test_parse_target;
          Alcotest.test_case "parse request line" `Quick test_parse_request_line;
          Alcotest.test_case "render response" `Quick test_render_response;
          QCheck_alcotest.to_alcotest qcheck_url_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_url_decode_total;
        ] );
      ( "app",
        [
          Alcotest.test_case "home" `Quick test_home;
          Alcotest.test_case "unknown route" `Quick test_unknown_route;
          Alcotest.test_case "search creates session" `Quick test_search_creates_session;
          Alcotest.test_case "search no results" `Quick test_search_no_results;
          Alcotest.test_case "search validation" `Quick test_search_validation;
          Alcotest.test_case "page_size validation" `Quick test_page_size_validation;
          Alcotest.test_case "metrics route" `Quick test_metrics_route;
          Alcotest.test_case "expand/show/back flow" `Quick test_expand_show_back_flow;
          Alcotest.test_case "session validation" `Quick test_session_validation;
          Alcotest.test_case "refine/unrefine flow" `Quick test_refine_unrefine_flow;
          Alcotest.test_case "facets flow" `Quick test_facets_flow;
          Alcotest.test_case "space route validation" `Quick test_space_route_validation;
          Alcotest.test_case "fuzzed handler" `Quick test_handler_never_raises;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
          Alcotest.test_case "oversized request line" `Quick test_oversized_request_line_rejected;
          Alcotest.test_case "truncated request times out" `Quick test_truncated_request_times_out;
          Alcotest.test_case "shed connection" `Quick test_shed_connection_sends_503;
        ] );
      ( "pool",
        [ Alcotest.test_case "multi-domain serve end-to-end" `Quick test_multi_domain_serve ] );
    ]
