(* The chaos suite: every timing-dependent behaviour runs on simulated
   clocks — there is not a single real-clock sleep in this file — so the
   whole suite is deterministic and instant. *)

open Bionav_util
open Bionav_core
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils
module Engine = Bionav_engine.Engine
module Prefetch = Bionav_prefetch.Prefetch
module Speculator = Bionav_prefetch.Speculator
module Clock = Bionav_resilience.Clock
module Backoff = Bionav_resilience.Backoff
module Retry = Bionav_resilience.Retry
module Breaker = Bionav_resilience.Breaker
module Chaos = Bionav_resilience.Chaos
module Deadline = Bionav_resilience.Deadline
module Guard = Bionav_resilience.Guard

(* Same corpus as test_engine: a seeded, findable query word. *)
let world =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:211 () in
     let deep =
       List.filter (fun c -> Bionav_mesh.Hierarchy.depth h c >= 3)
         (List.init (Bionav_mesh.Hierarchy.size h) Fun.id)
     in
     let params =
       {
         G.small_params with
         G.n_citations = 500;
         seeded_groups =
           [
             {
               G.tag = Some "cancer";
               cluster = [ List.nth deep 0; List.nth deep 7 ];
               count = 60;
               topics_per_citation = (1, 2);
             };
           ];
       }
     in
     let m = G.generate ~params ~seed:212 h in
     (DB.of_medline m, Eu.create m))

let cancer_nav =
  lazy
    (let db, eu = Lazy.force world in
     Nav_tree.of_database db (Eu.esearch eu "cancer"))

let engine ?config ?chaos () =
  let database, eutils = Lazy.force world in
  Engine.create ?config ?chaos ~database ~eutils ()

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- clock -------------------------------------------------------------- *)

let test_simulated_clock () =
  let c = Clock.simulated ~start_ms:100. () in
  Alcotest.(check bool) "simulated" true (Clock.is_simulated c);
  Alcotest.(check (float 1e-9)) "start" 100. (Clock.now_ms c);
  Clock.advance c 50.;
  Alcotest.(check (float 1e-9)) "advance" 150. (Clock.now_ms c);
  Clock.sleep_ms c 25.;
  Alcotest.(check (float 1e-9)) "sleep advances" 175. (Clock.now_ms c);
  Clock.sleep_ms c (-10.);
  Alcotest.(check (float 1e-9)) "negative sleep is a no-op" 175. (Clock.now_ms c);
  let c2 = Clock.simulated () in
  Alcotest.(check (float 1e-9)) "clocks are independent" 0. (Clock.now_ms c2)

let test_clock_validation () =
  Alcotest.(check bool) "real is not simulated" false (Clock.is_simulated Clock.real);
  Alcotest.(check bool) "advance on real raises" true
    (raises_invalid (fun () -> Clock.advance Clock.real 1.));
  Alcotest.(check bool) "negative advance raises" true
    (raises_invalid (fun () -> Clock.advance (Clock.simulated ()) (-1.)))

(* --- backoff ------------------------------------------------------------ *)

let test_backoff_validation () =
  Alcotest.(check bool) "default valid" true (Result.is_ok (Backoff.validate Backoff.default));
  let bad p = Result.is_error (Backoff.validate p) in
  Alcotest.(check bool) "zero base" true (bad { Backoff.default with base_ms = 0. });
  Alcotest.(check bool) "shrinking multiplier" true
    (bad { Backoff.default with multiplier = 0.5 });
  Alcotest.(check bool) "cap below base" true (bad { Backoff.default with cap_ms = 1. });
  Alcotest.(check bool) "negative jitter" true (bad { Backoff.default with jitter = -0.1 });
  Alcotest.(check bool) "jitter above multiplier - 1" true
    (bad { Backoff.default with multiplier = 1.2; jitter = 0.3 })

(* A valid random policy: multiplier >= 1 + jitter by construction. *)
let policy_gen =
  QCheck.Gen.(
    let* base_ms = float_range 0.1 50. in
    let* jitter = float_range 0. 1.5 in
    let* extra = float_range 0. 2. in
    let multiplier = 1. +. jitter +. extra in
    let* cap_factor = float_range 1. 200. in
    return { Backoff.base_ms; multiplier; cap_ms = base_ms *. cap_factor; jitter })

let policy_arb =
  QCheck.make ~print:(fun p ->
      Printf.sprintf "{base=%g; mult=%g; cap=%g; jitter=%g}" p.Backoff.base_ms p.Backoff.multiplier
        p.Backoff.cap_ms p.Backoff.jitter)
    policy_gen

let qcheck_backoff_monotone_and_capped =
  QCheck.Test.make ~name:"backoff monotone non-decreasing and never above cap" ~count:300
    QCheck.(pair policy_arb small_nat)
    (fun (p, seed) ->
      let delays = Backoff.schedule p ~seed ~n:12 in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | [ _ ] | [] -> true
      in
      monotone delays && List.for_all (fun d -> d <= p.Backoff.cap_ms +. 1e-9) delays)

let qcheck_backoff_deterministic =
  QCheck.Test.make ~name:"backoff identical for identical seeds" ~count:300
    QCheck.(pair policy_arb small_nat)
    (fun (p, seed) ->
      Backoff.schedule p ~seed ~n:8 = Backoff.schedule p ~seed ~n:8)

(* --- retry -------------------------------------------------------------- *)

let test_retry_succeeds_after_transients () =
  let clock = Clock.simulated () in
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls <= 2 then Error "transient" else Ok !calls
  in
  let result = Retry.run Retry.default_config ~clock ~rng:(Rng.create 7) f in
  Alcotest.(check (result int string)) "third attempt wins" (Ok 3) result;
  (* The two backoff sleeps advanced the virtual clock by exactly the
     seeded schedule — same policy, same seed, same draw order. *)
  let expected =
    List.fold_left ( +. ) 0. (Backoff.schedule Retry.default_config.Retry.backoff ~seed:7 ~n:2)
  in
  Alcotest.(check (float 1e-9)) "virtual time slept" expected (Clock.now_ms clock)

let test_retry_gives_up () =
  let clock = Clock.simulated () in
  let calls = ref 0 in
  let f () =
    incr calls;
    Error (Printf.sprintf "fail %d" !calls)
  in
  let result = Retry.run Retry.default_config ~clock ~rng:(Rng.create 7) f in
  Alcotest.(check (result int string)) "last error surfaces" (Error "fail 3") result;
  Alcotest.(check int) "exactly max_attempts calls" 3 !calls;
  Alcotest.(check bool) "config validated" true
    (raises_invalid (fun () ->
         Retry.run { Retry.default_config with max_attempts = 0 } ~clock ~rng:(Rng.create 0)
           (fun () -> Ok ())))

(* --- breaker ------------------------------------------------------------ *)

let test_breaker_trips_at_threshold () =
  let clock = Clock.simulated () in
  let config = { Breaker.failure_threshold = 3; cooldown_ms = 100. } in
  let b = Breaker.create ~config ~clock () in
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "still closed below threshold" true (Breaker.allow b);
  (* A success resets the streak: two more failures stay below threshold. *)
  Breaker.record_success b;
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "streak reset by success" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "tripped at threshold" false (Breaker.allow b)

let test_breaker_cooldown_and_probe () =
  let clock = Clock.simulated () in
  let config = { Breaker.failure_threshold = 1; cooldown_ms = 1000. } in
  let b = Breaker.create ~config ~clock () in
  Breaker.record_failure b;
  Alcotest.(check bool) "open" false (Breaker.allow b);
  Clock.advance clock 999.;
  Alcotest.(check bool) "still open inside cooldown" false (Breaker.allow b);
  Clock.advance clock 1.;
  Alcotest.(check bool) "half-open probe allowed" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "probe success closes" true (Breaker.state b = Breaker.Closed)

let test_breaker_probe_failure_reopens () =
  let clock = Clock.simulated () in
  let config = { Breaker.failure_threshold = 1; cooldown_ms = 1000. } in
  let b = Breaker.create ~config ~clock () in
  Breaker.record_failure b;
  Clock.advance clock 1000.;
  Alcotest.(check bool) "probe allowed" true (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "probe failure reopens" false (Breaker.allow b);
  Clock.advance clock 999.;
  Alcotest.(check bool) "full fresh cooldown required" false (Breaker.allow b);
  Clock.advance clock 1.;
  Alcotest.(check bool) "reopens after the fresh cooldown" true (Breaker.allow b)

let qcheck_breaker_cooldown_is_virtual_time =
  QCheck.Test.make ~name:"breaker reopens only after cooldown of virtual time" ~count:200
    QCheck.(pair (float_range 1. 100_000.) (float_range 0. 0.99))
    (fun (cooldown_ms, fraction) ->
      let clock = Clock.simulated () in
      let b =
        Breaker.create ~config:{ Breaker.failure_threshold = 1; cooldown_ms } ~clock ()
      in
      Breaker.record_failure b;
      Clock.advance clock (fraction *. cooldown_ms);
      let rejected_early = not (Breaker.allow b) in
      (* The epsilon absorbs float rounding: frac*c + (c - frac*c) can land
         one ulp short of c, which would leave the breaker open. *)
      Clock.advance clock (cooldown_ms -. (fraction *. cooldown_ms) +. 1e-3);
      rejected_early && Breaker.allow b)

(* --- chaos -------------------------------------------------------------- *)

let test_chaos_deterministic_per_seed () =
  let config = { Chaos.default_config with seed = 42; error_rate = 0.4; delay_rate = 0.4 } in
  let draw_all plan =
    List.init 100 (fun i -> Chaos.draw plan ~op:(if i mod 3 = 0 then "esearch" else "expand"))
  in
  let a = draw_all (Chaos.create config) in
  let b = draw_all (Chaos.create config) in
  Alcotest.(check bool) "identical verdict streams" true (a = b);
  Alcotest.(check bool) "some failures drawn" true (List.mem Chaos.Fail a);
  Alcotest.(check bool) "some delays drawn" true
    (List.exists (function Chaos.Delay _ -> true | _ -> false) a)

let test_chaos_eligibility_keeps_stream_aligned () =
  let config s fail_ops = { Chaos.default_config with seed = s; error_rate = 0.5; fail_ops } in
  let restricted = Chaos.create (config 9 [ "a" ]) in
  let unrestricted = Chaos.create (config 9 []) in
  let n = 200 in
  let rv = List.init n (fun _ -> Chaos.draw restricted ~op:"b") in
  let uv = List.init n (fun _ -> Chaos.draw unrestricted ~op:"b") in
  Alcotest.(check bool) "ineligible op never fails" false (List.mem Chaos.Fail rv);
  Alcotest.(check bool) "eligible op does fail" true (List.mem Chaos.Fail uv);
  (* Same seed, same draw order: wherever the unrestricted plan did not
     fail, the two streams agree verbatim — eligibility consumes the same
     variates, it only masks the verdict. *)
  List.iter2
    (fun r u -> if u <> Chaos.Fail then Alcotest.(check bool) "streams aligned" true (r = u))
    rv uv

let test_chaos_validation () =
  Alcotest.(check bool) "error_rate above 1" true
    (raises_invalid (fun () -> Chaos.create { Chaos.default_config with error_rate = 1.5 }));
  Alcotest.(check bool) "negative delay_rate" true
    (raises_invalid (fun () -> Chaos.create { Chaos.default_config with delay_rate = -0.1 }));
  Alcotest.(check bool) "inverted delay range" true
    (raises_invalid (fun () -> Chaos.create { Chaos.default_config with delay_ms = (50., 10.) }))

(* --- deadline ----------------------------------------------------------- *)

let test_deadline () =
  let clock = Clock.simulated () in
  let d = Deadline.start ~clock ~budget_ms:100. in
  Alcotest.(check bool) "fresh deadline live" false (Deadline.expired d);
  Alcotest.(check (float 1e-9)) "full budget remains" 100. (Deadline.remaining_ms d);
  Clock.advance clock 99.;
  Alcotest.(check bool) "still live" false (Deadline.expired d);
  Clock.advance clock 1.;
  Alcotest.(check bool) "expires exactly on budget" true (Deadline.expired d);
  Clock.advance clock 1000.;
  Alcotest.(check (float 1e-9)) "remaining clamped at 0" 0. (Deadline.remaining_ms d);
  Alcotest.(check bool) "zero budget expires immediately" true
    (Deadline.expired (Deadline.start ~clock ~budget_ms:0.));
  Alcotest.(check bool) "negative budget raises" true
    (raises_invalid (fun () -> Deadline.start ~clock ~budget_ms:(-1.)))

(* --- guard -------------------------------------------------------------- *)

let test_guard_no_exception_escapes () =
  let clock = Clock.simulated () in
  let g = Guard.create ~clock () in
  (match Guard.call g ~op:"x" (fun () -> failwith "boom") with
  | Ok _ -> Alcotest.fail "raising thunk cannot succeed"
  | Error (Guard.Gave_up msg) ->
      Alcotest.(check bool) "failure described" true (String.length msg > 0)
  | Error Guard.Circuit_open -> Alcotest.fail "breaker cannot be open yet");
  Alcotest.(check (result int string)) "healthy thunk passes"
    (Ok 7)
    (Result.map_error Guard.error_message (Guard.call g ~op:"x" (fun () -> 7)))

let test_guard_retries_transients () =
  let clock = Clock.simulated () in
  let g = Guard.create ~clock () in
  let calls = ref 0 in
  let f () =
    incr calls;
    if !calls <= 2 then failwith "transient" else 99
  in
  (match Guard.call g ~op:"x" f with
  | Ok v -> Alcotest.(check int) "recovered value" 99 v
  | Error e -> Alcotest.fail (Guard.error_message e));
  Alcotest.(check int) "two retries happened" 3 !calls;
  Alcotest.(check bool) "backoff slept virtual time" true (Clock.now_ms clock > 0.)

let test_guard_chaos_injection () =
  let clock = Clock.simulated () in
  let always_fail =
    Chaos.create { Chaos.default_config with seed = 1; error_rate = 1.; delay_rate = 0. }
  in
  let g =
    Guard.create ~chaos:always_fail
      ~config:{ Guard.default_config with breaker = None }
      ~clock ()
  in
  let ran = ref 0 in
  (match Guard.call g ~op:"esearch" (fun () -> incr ran) with
  | Ok () -> Alcotest.fail "total fault plan cannot succeed"
  | Error Guard.Circuit_open -> Alcotest.fail "breaker disabled"
  | Error (Guard.Gave_up _) -> ());
  Alcotest.(check int) "thunk never reached through injected failures" 0 !ran;
  Alcotest.(check int) "every attempt drew a failure" 3 (Chaos.injected_failures always_fail);
  let never_fail =
    Chaos.create { Chaos.default_config with seed = 1; error_rate = 0.; delay_rate = 1. }
  in
  let g2 = Guard.create ~chaos:never_fail ~clock () in
  Alcotest.(check (result int string)) "delays alone do not fail"
    (Ok 5)
    (Result.map_error Guard.error_message (Guard.call g2 ~op:"esearch" (fun () -> 5)));
  Alcotest.(check bool) "injected latency advanced the clock" true
    (Clock.now_ms clock > 0. && Chaos.injected_delays never_fail > 0)

let test_guard_breaker_opens () =
  let clock = Clock.simulated () in
  let config =
    {
      Guard.retry = { Retry.max_attempts = 1; backoff = Backoff.default };
      breaker = Some { Breaker.failure_threshold = 3; cooldown_ms = 1000. };
    }
  in
  let g = Guard.create ~config ~clock () in
  for _ = 1 to 3 do
    match Guard.call g ~op:"x" (fun () -> failwith "down") with
    | Error (Guard.Gave_up _) -> ()
    | Ok _ | Error Guard.Circuit_open -> Alcotest.fail "expected Gave_up"
  done;
  (match Guard.call g ~op:"x" (fun () -> 1) with
  | Error Guard.Circuit_open -> ()
  | Ok _ | Error (Guard.Gave_up _) -> Alcotest.fail "circuit should be open");
  Clock.advance clock 1000.;
  Alcotest.(check (result int string)) "healthy probe closes the circuit"
    (Ok 1)
    (Result.map_error Guard.error_message (Guard.call g ~op:"x" (fun () -> 1)))

(* --- navigation degradation --------------------------------------------- *)

let over_budget_factory = Some (fun () -> fun () -> true)

let test_degraded_expand_flagged () =
  let nav = Lazy.force cancer_nav in
  let root = Nav_tree.root nav in
  let degraded_counter = Metrics.counter "bionav_resilience_degraded_expands_total" in
  let before = Metrics.value degraded_counter in
  let healthy = Navigation.start (Navigation.bionav ()) nav in
  let healthy_revealed = Navigation.expand healthy root in
  Alcotest.(check bool) "healthy expand not degraded" false
    (List.exists (fun r -> r.Navigation.degraded) (Navigation.stats healthy).Navigation.history);
  Alcotest.(check int) "no degradation counted" before (Metrics.value degraded_counter);
  let starved = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_budget starved over_budget_factory;
  let starved_revealed = Navigation.expand starved root in
  Alcotest.(check bool) "degraded expand still reveals" true (starved_revealed <> []);
  (match (Navigation.stats starved).Navigation.history with
  | [ r ] -> Alcotest.(check bool) "record flagged degraded" true r.Navigation.degraded
  | _ -> Alcotest.fail "expected exactly one expand record");
  Alcotest.(check int) "degradation counted" (before + 1) (Metrics.value degraded_counter);
  (* The degraded cut is the Static_paged-style top-k page, generally a
     different (cheaper) answer than the heuristic cut. *)
  Alcotest.(check bool) "at most k children served" true (List.length starved_revealed <= 10);
  ignore healthy_revealed

let test_injected_plan_is_not_degraded () =
  let nav = Lazy.force cancer_nav in
  let root = Nav_tree.root nav in
  (* Memoize a real heuristic cut, then serve it to an over-budget session
     through a plan source: a free plan hit beats degrading. *)
  let donor = Navigation.start (Navigation.bionav ()) nav in
  let cut = Navigation.expand donor root in
  let stored = ref [] in
  let source =
    {
      Navigation.find_plan = (fun ~root:_ ~members:_ -> Some cut);
      store_plan = (fun ~root:_ ~members:_ ~cut -> stored := cut :: !stored);
    }
  in
  let starved = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source starved (Some source);
  Navigation.set_budget starved over_budget_factory;
  let revealed = Navigation.expand starved root in
  Alcotest.(check (list int)) "plan served verbatim" cut revealed;
  (match (Navigation.stats starved).Navigation.history with
  | [ r ] -> Alcotest.(check bool) "plan hit not degraded" false r.Navigation.degraded
  | _ -> Alcotest.fail "expected exactly one expand record")

let test_degraded_cut_never_stored () =
  let nav = Lazy.force cancer_nav in
  let root = Nav_tree.root nav in
  let stored = ref [] in
  let source =
    {
      Navigation.find_plan = (fun ~root:_ ~members:_ -> None);
      store_plan = (fun ~root:_ ~members:_ ~cut -> stored := cut :: !stored);
    }
  in
  let starved = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source starved (Some source);
  Navigation.set_budget starved over_budget_factory;
  ignore (Navigation.expand starved root : int list);
  Alcotest.(check int) "degraded cut not memoized" 0 (List.length !stored);
  let healthy = Navigation.start (Navigation.bionav ()) nav in
  Navigation.set_plan_source healthy (Some source);
  ignore (Navigation.expand healthy root : int list);
  Alcotest.(check int) "computed cut memoized" 1 (List.length !stored)

(* --- speculation TTL ----------------------------------------------------- *)

let spec_session clock ~job_ttl_ms =
  let nav = Lazy.force cancer_nav in
  let pf =
    Prefetch.create
      ~config:{ Prefetch.default_config with budget_per_action = 0; job_ttl_ms }
      ~clock ()
  in
  let session = Navigation.start (Navigation.bionav ()) nav in
  Prefetch.attach pf ~query:"cancer" session;
  ignore (Navigation.expand session (Nav_tree.root nav) : int list);
  pf

let test_speculation_jobs_expire () =
  let clock = Clock.simulated () in
  let pf = spec_session clock ~job_ttl_ms:(Some 100.) in
  let spec = Prefetch.speculator pf in
  Alcotest.(check bool) "jobs queued" true (Speculator.queue_length spec > 0);
  Clock.advance clock 101.;
  Alcotest.(check int) "stale jobs execute nothing" 0 (Prefetch.tick pf ~budget:8);
  Alcotest.(check int) "queue drained" 0 (Speculator.queue_length spec);
  Alcotest.(check bool) "expiries counted" true (Speculator.expired spec > 0);
  Alcotest.(check int) "nothing executed" 0 (Speculator.executed spec)

let test_speculation_jobs_run_before_ttl () =
  let clock = Clock.simulated () in
  let pf = spec_session clock ~job_ttl_ms:(Some 100.) in
  Clock.advance clock 100.;  (* exactly the TTL: not yet stale *)
  Alcotest.(check bool) "fresh jobs still run" true (Prefetch.tick pf ~budget:8 > 0);
  Alcotest.(check int) "no expiries" 0 (Speculator.expired (Prefetch.speculator pf))

(* --- engine under chaos -------------------------------------------------- *)

(* Replay deterministic traffic against a chaos-injected engine and fold
   every observable outcome into a trace string. Sessions alternate the
   real query with junk ones; cache_capacity 1 keeps the guarded backend
   in play for most searches. *)
let chaos_traffic ~seed ~sessions =
  let clock = Clock.simulated () in
  let chaos =
    Chaos.create
      {
        Chaos.seed;
        error_rate = 0.4;
        delay_rate = 0.4;
        delay_ms = (20., 200.);
        fail_ops = [ "esearch" ];
      }
  in
  let config =
    {
      Engine.default_config with
      Engine.clock;
      cache_capacity = 1;
      expand_budget_ms = Some 50.;
      prefetch = Some Prefetch.default_config;
    }
  in
  let t = engine ~config ~chaos () in
  let queries = [| "cancer"; "zzznever"; "cancer" |] in
  let trace = Buffer.create 1024 in
  let crashes = ref 0 in
  let degraded = ref 0 in
  for i = 0 to sessions - 1 do
    let q = queries.(i mod Array.length queries) in
    (match Engine.search t q with
    | Ok (Engine.Session s) ->
        for _ = 1 to 4 do
          let navigation = Engine.navigation s in
          let active = Navigation.active navigation in
          match
            List.find_opt (Active_tree.is_expandable active) (Active_tree.visible active)
          with
          | None -> ()
          | Some node -> (
              match Engine.expand s node with
              | revealed ->
                  Buffer.add_string trace
                    (Printf.sprintf "  expand %d -> %d\n" node (List.length revealed))
              | exception e ->
                  incr crashes;
                  Buffer.add_string trace (Printf.sprintf "  CRASH %s\n" (Printexc.to_string e)))
        done;
        let st = Navigation.stats (Engine.navigation s) in
        degraded :=
          !degraded
          + List.length (List.filter (fun r -> r.Navigation.degraded) st.Navigation.history);
        Buffer.add_string trace
          (Printf.sprintf "s%d %s ok cost=%d t=%.3f\n" i q (Navigation.total_cost st)
             (Clock.now_ms clock));
        ignore (Engine.close t (Engine.session_id s) : bool)
    | Ok Engine.No_results ->
        Buffer.add_string trace (Printf.sprintf "s%d %s none t=%.3f\n" i q (Clock.now_ms clock))
    | Error msg ->
        Buffer.add_string trace
          (Printf.sprintf "s%d %s error %s t=%.3f\n" i q msg (Clock.now_ms clock))
    | exception e ->
        incr crashes;
        Buffer.add_string trace (Printf.sprintf "s%d CRASH %s\n" i (Printexc.to_string e)));
    ignore (Engine.prefetch_tick t ~budget:1 : int)
  done;
  (Buffer.contents trace, !crashes, !degraded)

let test_engine_survives_fault_plan () =
  let trace, crashes, _ = chaos_traffic ~seed:3 ~sessions:24 in
  Alcotest.(check int) "no exception escaped the engine" 0 crashes;
  Alcotest.(check bool) "faults actually surfaced as errors" true
    (let rec contains i =
       i + 5 <= String.length trace && (String.sub trace i 5 = "error" || contains (i + 1))
     in
     contains 0)

let test_engine_chaos_replay_deterministic () =
  let t1, c1, d1 = chaos_traffic ~seed:17 ~sessions:16 in
  let t2, c2, d2 = chaos_traffic ~seed:17 ~sessions:16 in
  Alcotest.(check string) "byte-identical traces" t1 t2;
  Alcotest.(check int) "no crashes" 0 (c1 + c2);
  Alcotest.(check int) "same degradations" d1 d2;
  let t3, _, _ = chaos_traffic ~seed:18 ~sessions:16 in
  Alcotest.(check bool) "different seed, different run" true (t1 <> t3)

let test_engine_zero_budget_degrades () =
  let clock = Clock.simulated () in
  let config =
    { Engine.default_config with Engine.clock; expand_budget_ms = Some 0. }
  in
  let t = engine ~config () in
  match Engine.search t "cancer" with
  | Ok (Engine.Session s) ->
      let nav = Engine.session_nav s in
      let revealed = Engine.expand s (Nav_tree.root nav) in
      Alcotest.(check bool) "degraded expand reveals" true (revealed <> []);
      Alcotest.(check bool) "every expand degraded under zero budget" true
        (List.for_all
           (fun r -> r.Navigation.degraded)
           (Navigation.stats (Engine.navigation s)).Navigation.history)
  | Ok Engine.No_results | Error _ -> Alcotest.fail "cancer query must produce a session"

let test_engine_search_errors_when_backend_down () =
  let clock = Clock.simulated () in
  let chaos =
    Chaos.create
      { Chaos.default_config with seed = 0; error_rate = 1.; delay_rate = 0. }
  in
  let t = engine ~config:{ Engine.default_config with Engine.clock; cache_capacity = 1 } ~chaos () in
  (match Engine.search t "cancer" with
  | Error msg -> Alcotest.(check bool) "error mentions backend" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "a total fault plan cannot produce a session");
  Alcotest.(check int) "no session leaked" 0 (Engine.session_count t)

let () =
  Alcotest.run "resilience"
    [
      ( "clock",
        [
          Alcotest.test_case "simulated clock" `Quick test_simulated_clock;
          Alcotest.test_case "validation" `Quick test_clock_validation;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "validation" `Quick test_backoff_validation;
          QCheck_alcotest.to_alcotest qcheck_backoff_monotone_and_capped;
          QCheck_alcotest.to_alcotest qcheck_backoff_deterministic;
        ] );
      ( "retry",
        [
          Alcotest.test_case "succeeds after transients" `Quick test_retry_succeeds_after_transients;
          Alcotest.test_case "gives up" `Quick test_retry_gives_up;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick test_breaker_trips_at_threshold;
          Alcotest.test_case "cooldown and probe" `Quick test_breaker_cooldown_and_probe;
          Alcotest.test_case "probe failure reopens" `Quick test_breaker_probe_failure_reopens;
          QCheck_alcotest.to_alcotest qcheck_breaker_cooldown_is_virtual_time;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_chaos_deterministic_per_seed;
          Alcotest.test_case "eligibility" `Quick test_chaos_eligibility_keeps_stream_aligned;
          Alcotest.test_case "validation" `Quick test_chaos_validation;
        ] );
      ("deadline", [ Alcotest.test_case "expiry" `Quick test_deadline ]);
      ( "guard",
        [
          Alcotest.test_case "no exception escapes" `Quick test_guard_no_exception_escapes;
          Alcotest.test_case "retries transients" `Quick test_guard_retries_transients;
          Alcotest.test_case "chaos injection" `Quick test_guard_chaos_injection;
          Alcotest.test_case "breaker opens" `Quick test_guard_breaker_opens;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "degraded expand flagged" `Quick test_degraded_expand_flagged;
          Alcotest.test_case "plan hit not degraded" `Quick test_injected_plan_is_not_degraded;
          Alcotest.test_case "degraded cut never stored" `Quick test_degraded_cut_never_stored;
        ] );
      ( "speculation-ttl",
        [
          Alcotest.test_case "jobs expire" `Quick test_speculation_jobs_expire;
          Alcotest.test_case "jobs run before ttl" `Quick test_speculation_jobs_run_before_ttl;
        ] );
      ( "engine-chaos",
        [
          Alcotest.test_case "survives fault plan" `Quick test_engine_survives_fault_plan;
          Alcotest.test_case "replay deterministic" `Quick test_engine_chaos_replay_deterministic;
          Alcotest.test_case "zero budget degrades" `Quick test_engine_zero_budget_degrades;
          Alcotest.test_case "backend down is an error" `Quick
            test_engine_search_errors_when_backend_down;
        ] );
    ]
