open Bionav_util
open Bionav_core

let feq = Alcotest.(check (float 1e-9))

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

(*      0 {0,1}
       / \
      1   2
      |   {4,5}
      3
   1={1,2} 3={3}    *)
let sample () =
  mk [| -1; 0; 0; 1 |] [| [ 0; 1 ]; [ 1; 2 ]; [ 4; 5 ]; [ 3 ] |] [| 50; 10; 10; 5 |]

let ctx () = Cost_model.create (sample ())

let test_full_mask () =
  let c = ctx () in
  Alcotest.(check int) "all bits" 0b1111 (Cost_model.full_mask c)

let test_members_roundtrip () =
  let c = ctx () in
  Alcotest.(check (list int)) "members" [ 0; 2; 3 ] (Cost_model.members c 0b1101);
  Alcotest.(check int) "mask_of" 0b1101 (Cost_model.mask_of [ 0; 2; 3 ])

let test_root_of () =
  let c = ctx () in
  Alcotest.(check int) "root of full" 0 (Cost_model.root_of c 0b1111);
  Alcotest.(check int) "root of subtree" 1 (Cost_model.root_of c 0b1010)

let test_subtree_mask () =
  let c = ctx () in
  Alcotest.(check int) "subtree of 1" 0b1010 (Cost_model.subtree_mask c ~mask:0b1111 1);
  (* With 3 removed from the mask, subtree of 1 is just 1. *)
  Alcotest.(check int) "restricted" 0b0010 (Cost_model.subtree_mask c ~mask:0b0111 1);
  Alcotest.(check int) "leaf" 0b1000 (Cost_model.subtree_mask c ~mask:0b1111 3)

let test_distinct () =
  let c = ctx () in
  Alcotest.(check int) "full distinct" 6 (Cost_model.distinct c 0b1111);
  Alcotest.(check int) "overlap collapses" 3 (Cost_model.distinct c 0b0011);
  (* Memoized second call agrees. *)
  Alcotest.(check int) "memo stable" 3 (Cost_model.distinct c 0b0011)

let test_p_explore_conservation () =
  let c = ctx () in
  let full = Cost_model.p_explore c 0b1111 in
  feq "full tree explores" 1.0 full;
  let parts = [ 0b0001; 0b0010; 0b0100; 0b1000 ] in
  let sum = List.fold_left (fun acc m -> acc +. Cost_model.p_explore c m) 0. parts in
  feq "partition conserves mass" 1.0 sum

let test_branch_probability () =
  let c = ctx () in
  let p = Cost_model.branch_probability c ~parent_mask:0b1111 ~branch_mask:0b0010 in
  feq "ratio" (Cost_model.p_explore c 0b0010) p;
  feq "self" 1.0 (Cost_model.branch_probability c ~parent_mask:0b0010 ~branch_mask:0b0010)

let test_cost_leaf () =
  let c = ctx () in
  feq "conditional showresults" 3. (Cost_model.cost_leaf c 0b0011)

let test_cost_formula () =
  let c = ctx () in
  let mask = 0b1111 in
  let px = Cost_model.p_expand c mask in
  let expected =
    ((1. -. px) *. 6.) +. (px *. (Probability.default_params.Probability.expand_cost +. 7.))
  in
  feq "formula" expected (Cost_model.cost c ~mask ~cut_term:7.)

let test_cost_unstructured_single_concept () =
  let c = ctx () in
  (* A real single concept: no expansion possible, cost = |L|. *)
  feq "showresults" 2. (Cost_model.cost_unstructured c 0b0001)

let test_cost_unstructured_supernode () =
  let t =
    Comp_tree.make ~parent:[| -1 |]
      ~results:[| Docset.of_list (List.init 60 Fun.id) |]
      ~totals:[| 120 |] ~multiplicity:[| 100 |]
      ~sub_weights:[| Array.make 100 0.6 |]
      ()
  in
  let c = Cost_model.create t in
  let cost = Cost_model.cost_unstructured c 0b1 in
  (* |L| = 60 > upper threshold so px = 1: cost = expand_cost + future(100). *)
  let expected =
    Probability.default_params.Probability.expand_cost
    +. Probability.future_drilldown_cost Probability.default_params 100
  in
  feq "surrogate" expected cost;
  Alcotest.(check bool) "far below showresults" true (cost < 60.)

let test_underlying () =
  let t =
    Comp_tree.make ~parent:[| -1; 0 |]
      ~results:[| Docset.of_list [ 1 ]; Docset.of_list [ 2 ] |]
      ~totals:[| 5; 5 |] ~multiplicity:[| 7; 2 |] ()
  in
  let c = Cost_model.create t in
  Alcotest.(check int) "sums multiplicity" 9 (Cost_model.underlying c 0b11)

let test_create_rejects_oversize () =
  let n = Cost_model.max_size + 1 in
  let parent = Array.init n (fun i -> if i = 0 then -1 else 0) in
  let results = Array.init n (fun i -> Docset.singleton i) in
  let totals = Array.make n 5 in
  let t = Comp_tree.make ~parent ~results ~totals () in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Cost_model.create t);
       false
     with Invalid_argument _ -> true)

let test_root_of_rejects_empty () =
  let c = ctx () in
  Alcotest.(check bool) "empty mask" true
    (try
       ignore (Cost_model.root_of c 0);
       false
     with Invalid_argument _ -> true)

(* Satellite regression: node indices outside the mask's word range must
   fail loudly instead of silently shifting out of the bitmask. *)
let test_mask_of_rejects_out_of_range () =
  Alcotest.(check int) "in range" 0b110 (Cost_model.mask_of [ 1; 2 ]);
  let rejects nodes =
    try
      ignore (Cost_model.mask_of nodes);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative index" true (rejects [ -1 ]);
  Alcotest.(check bool) "index = max_size" true (rejects [ Cost_model.max_size ]);
  Alcotest.(check bool) "index > max_size" true (rejects [ 0; 1; 62 ])

let () =
  Alcotest.run "cost_model"
    [
      ( "unit",
        [
          Alcotest.test_case "full mask" `Quick test_full_mask;
          Alcotest.test_case "members roundtrip" `Quick test_members_roundtrip;
          Alcotest.test_case "root_of" `Quick test_root_of;
          Alcotest.test_case "subtree_mask" `Quick test_subtree_mask;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "explore conservation" `Quick test_p_explore_conservation;
          Alcotest.test_case "branch probability" `Quick test_branch_probability;
          Alcotest.test_case "cost_leaf" `Quick test_cost_leaf;
          Alcotest.test_case "cost formula" `Quick test_cost_formula;
          Alcotest.test_case "unstructured single" `Quick test_cost_unstructured_single_concept;
          Alcotest.test_case "unstructured supernode" `Quick test_cost_unstructured_supernode;
          Alcotest.test_case "underlying" `Quick test_underlying;
          Alcotest.test_case "rejects oversize" `Quick test_create_rejects_oversize;
          Alcotest.test_case "root_of empty" `Quick test_root_of_rejects_empty;
          Alcotest.test_case "mask_of range guard" `Quick test_mask_of_rejects_out_of_range;
        ] );
    ]
