open Bionav_util
open Bionav_core

let make_nav n_results =
  let h = Bionav_mesh.Hierarchy.of_parents [| -1; 0 |] in
  Nav_tree.build ~hierarchy:h
    ~attachments:[ (1, Docset.of_list (List.init n_results Fun.id)) ]
    ~total_count:(fun _ -> 1000)

let test_builds_once_per_query () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create
      ~build:(fun q ->
        incr calls;
        make_nav (String.length q))
      ()
  in
  let a = Nav_cache.get cache "prothymosin" in
  let b = Nav_cache.get cache "prothymosin" in
  Alcotest.(check int) "one build" 1 !calls;
  Alcotest.(check bool) "same tree" true (a == b)

let test_normalizes_queries () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create
      ~build:(fun q ->
        incr calls;
        make_nav (String.length (String.trim q)))
      ()
  in
  ignore (Nav_cache.get cache "Prothymosin");
  ignore (Nav_cache.get cache "  prothymosin  ");
  ignore (Nav_cache.get cache "PROTHYMOSIN");
  Alcotest.(check int) "normalized to one key" 1 !calls

let test_distinct_queries_build_separately () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create
      ~build:(fun q ->
        incr calls;
        make_nav (String.length q))
      ()
  in
  ignore (Nav_cache.get cache "alpha");
  ignore (Nav_cache.get cache "beta");
  Alcotest.(check int) "two builds" 2 !calls

let test_capacity_bound () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create ~capacity:2
      ~build:(fun q ->
        incr calls;
        make_nav (String.length q))
      ()
  in
  ignore (Nav_cache.get cache "a");
  ignore (Nav_cache.get cache "b");
  ignore (Nav_cache.get cache "c");
  (* "a" evicted: rebuilding it is a new call. *)
  ignore (Nav_cache.get cache "a");
  Alcotest.(check int) "four builds" 4 !calls

let test_hit_rate () =
  let cache = Nav_cache.create ~build:(fun q -> make_nav (String.length q)) () in
  Alcotest.(check (float 1e-9)) "empty" 0. (Nav_cache.hit_rate cache);
  ignore (Nav_cache.get cache "q");
  ignore (Nav_cache.get cache "q");
  ignore (Nav_cache.get cache "q");
  Alcotest.(check (float 1e-9)) "2/3" (2. /. 3.) (Nav_cache.hit_rate cache);
  Alcotest.(check int) "hits" 2 (Nav_cache.hits cache);
  Alcotest.(check int) "misses" 1 (Nav_cache.misses cache)

let test_hit_rate_spans_normalized_variants () =
  let cache = Nav_cache.create ~build:(fun q -> make_nav (String.length q)) () in
  let a = Nav_cache.get cache "  Cancer " in
  let b = Nav_cache.get cache "cancer" in
  Alcotest.(check bool) "one entry" true (a == b);
  Alcotest.(check int) "variant was a hit" 1 (Nav_cache.hits cache);
  Alcotest.(check int) "one miss" 1 (Nav_cache.misses cache);
  Alcotest.(check (float 1e-9)) "hit rate 1/2" 0.5 (Nav_cache.hit_rate cache)

let test_eviction_counter () =
  let cache = Nav_cache.create ~capacity:1 ~build:(fun q -> make_nav (String.length q)) () in
  ignore (Nav_cache.get cache "a");
  Alcotest.(check int) "no evictions" 0 (Nav_cache.evictions cache);
  ignore (Nav_cache.get cache "b");
  Alcotest.(check int) "one eviction" 1 (Nav_cache.evictions cache)

let test_clear () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create
      ~build:(fun q ->
        incr calls;
        make_nav (String.length q))
      ()
  in
  ignore (Nav_cache.get cache "q");
  Nav_cache.clear cache;
  ignore (Nav_cache.get cache "q");
  Alcotest.(check int) "rebuilt after clear" 2 !calls

let test_clear_resets_counters () =
  let cache = Nav_cache.create ~capacity:1 ~build:(fun q -> make_nav (String.length q)) () in
  ignore (Nav_cache.get cache "a");
  ignore (Nav_cache.get cache "a");
  ignore (Nav_cache.get cache "b");
  (* lifetime so far: 1 hit, 2 misses, 1 eviction *)
  Alcotest.(check bool) "pre-clear activity" true
    (Nav_cache.hits cache > 0 && Nav_cache.misses cache > 0 && Nav_cache.evictions cache > 0);
  Nav_cache.clear cache;
  Alcotest.(check int) "hits zeroed" 0 (Nav_cache.hits cache);
  Alcotest.(check int) "misses zeroed" 0 (Nav_cache.misses cache);
  Alcotest.(check int) "evictions zeroed" 0 (Nav_cache.evictions cache);
  Alcotest.(check (float 1e-9)) "hit rate back to empty" 0. (Nav_cache.hit_rate cache);
  ignore (Nav_cache.get cache "q");
  ignore (Nav_cache.get cache "q");
  (* 1 miss + 1 hit since the clear: the rate reflects only this regime. *)
  Alcotest.(check (float 1e-9)) "post-clear regime" 0.5 (Nav_cache.hit_rate cache)

let test_put_seeds_without_building () =
  let calls = ref 0 in
  let cache =
    Nav_cache.create
      ~build:(fun q ->
        incr calls;
        make_nav (String.length q))
      ()
  in
  let nav = make_nav 3 in
  Nav_cache.put cache "  Warm " nav;
  Alcotest.(check int) "no build on put" 0 !calls;
  Alcotest.(check int) "put is not a lookup" 0 (Nav_cache.hits cache + Nav_cache.misses cache);
  let got = Nav_cache.get cache "warm" in
  Alcotest.(check bool) "seeded tree served under normalized key" true (got == nav);
  Alcotest.(check int) "still no build" 0 !calls

let test_mutation_during_fold_trees () =
  let cache = Nav_cache.create ~build:(fun q -> make_nav (String.length q)) () in
  ignore (Nav_cache.get cache "a");
  ignore (Nav_cache.get cache "b");
  Alcotest.(check bool) "put during fold_trees rejected" true
    (try
       Nav_cache.fold_trees cache (fun _ () -> Nav_cache.put cache "c" (make_nav 3)) ();
       false
     with Invalid_argument _ -> true);
  (* The guard released: the cache still works. *)
  Alcotest.(check int) "fold still walks both trees" 2
    (Nav_cache.fold_trees cache (fun _ n -> n + 1) 0)

let () =
  Alcotest.run "nav_cache"
    [
      ( "unit",
        [
          Alcotest.test_case "builds once" `Quick test_builds_once_per_query;
          Alcotest.test_case "normalizes" `Quick test_normalizes_queries;
          Alcotest.test_case "distinct queries" `Quick test_distinct_queries_build_separately;
          Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
          Alcotest.test_case "hit rate" `Quick test_hit_rate;
          Alcotest.test_case "hit rate across variants" `Quick
            test_hit_rate_spans_normalized_variants;
          Alcotest.test_case "eviction counter" `Quick test_eviction_counter;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "clear resets counters" `Quick test_clear_resets_counters;
          Alcotest.test_case "put seeds without building" `Quick
            test_put_seeds_without_building;
          Alcotest.test_case "mutation during fold_trees" `Quick
            test_mutation_during_fold_trees;
        ] );
    ]
