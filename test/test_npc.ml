open Bionav_util
open Bionav_npc

(* --- MES --- *)

let triangle () = Mes.make ~n_vertices:3 ~edges:[ (0, 1, 5); (1, 2, 3); (0, 2, 1) ]

let test_mes_subset_weight () =
  let g = triangle () in
  Alcotest.(check int) "pair 0,1" 5 (Mes.subset_weight g [ 0; 1 ]);
  Alcotest.(check int) "all" 9 (Mes.subset_weight g [ 0; 1; 2 ]);
  Alcotest.(check int) "singleton" 0 (Mes.subset_weight g [ 1 ]);
  Alcotest.(check int) "empty" 0 (Mes.subset_weight g [])

let test_mes_solve_triangle () =
  let g = triangle () in
  let subset, w = Mes.solve g ~k:2 in
  Alcotest.(check int) "best pair weight" 5 w;
  Alcotest.(check (list int)) "best pair" [ 0; 1 ] subset;
  let _, w3 = Mes.solve g ~k:3 in
  Alcotest.(check int) "full graph" 9 w3;
  let _, w0 = Mes.solve g ~k:0 in
  Alcotest.(check int) "k=0" 0 w0

let test_mes_decision () =
  let g = triangle () in
  Alcotest.(check bool) "achievable" true (Mes.decision g ~k:2 ~weight:5);
  Alcotest.(check bool) "not achievable" false (Mes.decision g ~k:2 ~weight:6)

let test_mes_path_graph () =
  (* Path 0-1-2-3 with unit weights: best 3 vertices capture 2 edges. *)
  let g = Mes.make ~n_vertices:4 ~edges:[ (0, 1, 1); (1, 2, 1); (2, 3, 1) ] in
  let _, w = Mes.solve g ~k:3 in
  Alcotest.(check int) "two edges" 2 w

let rejects f = try ignore (f ()); false with Invalid_argument _ -> true

let test_mes_validation () =
  Alcotest.(check bool) "self loop" true
    (rejects (fun () -> Mes.make ~n_vertices:2 ~edges:[ (1, 1, 1) ]));
  Alcotest.(check bool) "range" true
    (rejects (fun () -> Mes.make ~n_vertices:2 ~edges:[ (0, 5, 1) ]));
  Alcotest.(check bool) "weight" true
    (rejects (fun () -> Mes.make ~n_vertices:2 ~edges:[ (0, 1, 0) ]));
  Alcotest.(check bool) "duplicate" true
    (rejects (fun () -> Mes.make ~n_vertices:2 ~edges:[ (0, 1, 1); (1, 0, 2) ]));
  Alcotest.(check bool) "k out of range" true (rejects (fun () -> Mes.solve (triangle ()) ~k:9))

(* --- TED --- *)

let test_ted_star_structure () =
  let t = Ted.star [| [ 1; 2 ]; [ 2; 3 ]; [] |] in
  Alcotest.(check int) "size" 4 (Ted.size t)

let test_ted_duplicates () =
  let t = Ted.star [| [ 1; 2 ]; [ 2; 3 ]; [ 2 ] |] in
  (* All together: element 2 appears 3 times -> 2 duplicates. *)
  Alcotest.(check int) "all in one group" 2 (Ted.duplicates_within t [ [ 0; 1; 2; 3 ] ]);
  (* Separated: no duplicates anywhere. *)
  Alcotest.(check int) "all separate" 0 (Ted.duplicates_within t [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]);
  (* Nodes 1 and 2 together share element 2. *)
  Alcotest.(check int) "pair" 1 (Ted.duplicates_within t [ [ 1; 2 ]; [ 0; 3 ] ])

let test_ted_duplicates_multiset () =
  (* An element appearing 3 times within one node counts as 2 duplicates. *)
  let t = Ted.star [| [ 7; 7; 7 ] |] in
  Alcotest.(check int) "triple" 2 (Ted.duplicates_within t [ [ 0; 1 ] ])

let test_ted_valid_cut () =
  let t = Ted.make ~parent:[| -1; 0; 1; 0 |] ~elements:[| []; [ 1 ]; [ 2 ]; [ 3 ] |] in
  Alcotest.(check bool) "leaf cut" true (Ted.is_valid_cut t [ 2; 3 ]);
  Alcotest.(check bool) "ancestor pair invalid" false (Ted.is_valid_cut t [ 1; 2 ]);
  Alcotest.(check bool) "empty invalid" false (Ted.is_valid_cut t []);
  Alcotest.(check bool) "root invalid" false (Ted.is_valid_cut t [ 0 ])

let test_ted_cut_components () =
  let t = Ted.make ~parent:[| -1; 0; 1; 0 |] ~elements:[| []; [ 1 ]; [ 2 ]; [ 3 ] |] in
  let comps = Ted.cut_components t [ 1 ] in
  Alcotest.(check (list (list int))) "upper then lower" [ [ 0; 3 ]; [ 1; 2 ] ] comps

let test_ted_best_duplicates () =
  let t = Ted.star [| [ 1 ]; [ 1 ]; [ 2 ] |] in
  (* 2 components: cut one child. Keeping the two [1]-holders in the upper
     subtree yields 1 duplicate. *)
  Alcotest.(check (option int)) "best" (Some 1) (Ted.best_duplicates t ~components:2);
  (* 3 components: only one child stays with the root, nothing shares. *)
  Alcotest.(check (option int)) "split" (Some 0) (Ted.best_duplicates t ~components:3);
  (* 4 components: all children cut. *)
  Alcotest.(check (option int)) "fully split" (Some 0) (Ted.best_duplicates t ~components:4);
  (* 5 components impossible on a 4-node star. *)
  Alcotest.(check (option int)) "impossible" None (Ted.best_duplicates t ~components:5)

let test_ted_decision () =
  let t = Ted.star [| [ 1 ]; [ 1 ]; [ 2 ] |] in
  Alcotest.(check bool) "yes" true (Ted.decision t ~components:2 ~duplicates:1);
  Alcotest.(check bool) "no" false (Ted.decision t ~components:2 ~duplicates:2)

(* --- Reduction --- *)

let test_reduce_shapes () =
  let g = triangle () in
  let ted, j = Reduction.reduce g ~k:2 in
  Alcotest.(check int) "star over vertices" 4 (Ted.size ted);
  Alcotest.(check int) "components" 2 j

let test_reduce_triangle_equivalence () =
  let g = triangle () in
  Alcotest.(check bool) "k=1" true (Reduction.verify_equivalence g ~k:1);
  Alcotest.(check bool) "k=2" true (Reduction.verify_equivalence g ~k:2)

let test_reduce_rejects_bad_k () =
  let g = triangle () in
  Alcotest.(check bool) "k=n" true (rejects (fun () -> Reduction.reduce g ~k:3));
  Alcotest.(check bool) "negative" true (rejects (fun () -> Reduction.reduce g ~k:(-1)))

let test_mes_of_ted_cut () =
  let g = triangle () in
  let ted, _ = Reduction.reduce g ~k:2 in
  (* Cutting star child 3 (vertex 2) keeps vertices {0, 1}. *)
  Alcotest.(check (list int)) "kept vertices" [ 0; 1 ] (Reduction.mes_of_ted_cut g ted [ 3 ])

let test_reduction_weighted_instance () =
  (* 4-cycle with one heavy chord: optimum k=3 subset must include the
     heavy edge. *)
  let g =
    Mes.make ~n_vertices:4
      ~edges:[ (0, 1, 1); (1, 2, 1); (2, 3, 1); (3, 0, 1); (0, 2, 10) ]
  in
  let _, w = Mes.solve g ~k:3 in
  Alcotest.(check int) "12 = chord + 2 sides" 12 w;
  for k = 1 to 3 do
    Alcotest.(check bool) (Printf.sprintf "equivalence k=%d" k) true
      (Reduction.verify_equivalence g ~k)
  done

let qcheck_reduction_equivalence =
  QCheck.Test.make ~name:"MES optimum = TED optimum under the reduction" ~count:60
    QCheck.(triple (int_range 2 6) (int_range 0 10_000) (int_range 1 5))
    (fun (n, seed, k) ->
      let k = min k (n - 1) in
      let rng = Rng.create seed in
      let g = Mes.random rng ~n_vertices:n ~edge_prob:0.5 ~max_weight:4 in
      Reduction.verify_equivalence g ~k)

let () =
  Alcotest.run "npc"
    [
      ( "mes",
        [
          Alcotest.test_case "subset weight" `Quick test_mes_subset_weight;
          Alcotest.test_case "solve triangle" `Quick test_mes_solve_triangle;
          Alcotest.test_case "decision" `Quick test_mes_decision;
          Alcotest.test_case "path graph" `Quick test_mes_path_graph;
          Alcotest.test_case "validation" `Quick test_mes_validation;
        ] );
      ( "ted",
        [
          Alcotest.test_case "star structure" `Quick test_ted_star_structure;
          Alcotest.test_case "duplicates" `Quick test_ted_duplicates;
          Alcotest.test_case "multiset duplicates" `Quick test_ted_duplicates_multiset;
          Alcotest.test_case "valid cut" `Quick test_ted_valid_cut;
          Alcotest.test_case "cut components" `Quick test_ted_cut_components;
          Alcotest.test_case "best duplicates" `Quick test_ted_best_duplicates;
          Alcotest.test_case "decision" `Quick test_ted_decision;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "shapes" `Quick test_reduce_shapes;
          Alcotest.test_case "triangle equivalence" `Quick test_reduce_triangle_equivalence;
          Alcotest.test_case "rejects bad k" `Quick test_reduce_rejects_bad_k;
          Alcotest.test_case "cut translation" `Quick test_mes_of_ted_cut;
          Alcotest.test_case "weighted instance" `Quick test_reduction_weighted_instance;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest qcheck_reduction_equivalence ]);
    ]
