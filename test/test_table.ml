open Bionav_util

let test_render_alignment () =
  let out = Table.render [ Table.Left; Table.Right ] [ [ "ab"; "1" ]; [ "c"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "row 1" "ab   1" (List.nth lines 0);
  Alcotest.(check string) "row 2" "c   22" (List.nth lines 1)

let test_render_header_separator () =
  let out = Table.render ~header:[ "x"; "y" ] [ Table.Left; Table.Left ] [ [ "1"; "2" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "dashes" true (String.for_all (fun c -> c = '-') (List.nth lines 1));
  Alcotest.(check int) "line count" 4 (List.length lines)

let test_render_empty () = Alcotest.(check string) "empty" "" (Table.render [] [])

let test_render_ragged_rows () =
  (* Rows with fewer cells than the widest row must not raise. *)
  let out = Table.render [ Table.Left ] [ [ "a"; "b" ]; [ "c" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_bar_chart_scaling () =
  let out = Table.bar_chart ~width:10 ~title:"t" [ ("a", 10.); ("b", 5.) ] in
  let lines = String.split_on_char '\n' out in
  let count_hashes s = String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 s in
  Alcotest.(check int) "max bar full width" 10 (count_hashes (List.nth lines 1));
  Alcotest.(check int) "half bar" 5 (count_hashes (List.nth lines 2))

let test_bar_chart_zero () =
  let out = Table.bar_chart ~title:"t" [ ("a", 0.) ] in
  Alcotest.(check bool) "no bars" true (not (String.contains out '#'))

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let test_grouped_bar_chart () =
  let out =
    Table.grouped_bar_chart ~width:8 ~title:"cost" ~series_names:("static", "bionav")
      [ ("q1", 8., 4.) ]
  in
  Alcotest.(check bool) "mentions static" true (contains ~sub:"static" out);
  Alcotest.(check bool) "mentions bionav" true (contains ~sub:"bionav" out);
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "title + two bars + trailing" 4 (List.length lines)

let test_section () =
  let out = Table.section "Hello" in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  Alcotest.(check string) "middle" "= Hello =" (List.nth lines 1)

let () =
  Alcotest.run "table"
    [
      ( "unit",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "header separator" `Quick test_render_header_separator;
          Alcotest.test_case "empty" `Quick test_render_empty;
          Alcotest.test_case "ragged rows" `Quick test_render_ragged_rows;
          Alcotest.test_case "bar chart scaling" `Quick test_bar_chart_scaling;
          Alcotest.test_case "bar chart zero" `Quick test_bar_chart_zero;
          Alcotest.test_case "grouped bar chart" `Quick test_grouped_bar_chart;
          Alcotest.test_case "section" `Quick test_section;
        ] );
    ]
