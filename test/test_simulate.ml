open Bionav_util
open Bionav_core
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module DB = Bionav_store.Database

(* Hand-built fixture: a 3-level tree with 12 citations per node. *)
let fixture () =
  let parent = [| -1; 0; 1; 2; 0; 4; 5; 1 |] in
  let h = Bionav_mesh.Hierarchy.of_parents parent in
  let attachments =
    List.init 7 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 12 (fun j -> (node * 12) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 800)

let test_static_expands_equal_target_depth () =
  let nav = fixture () in
  (* Node 3 has nav depth 3; static navigation expands once per level. *)
  let o = Simulate.to_target (Navigation.start Navigation.Static nav) ~target:3 in
  Alcotest.(check int) "expands = depth" (Nav_tree.depth nav 3) o.Simulate.expands;
  Alcotest.(check int) "cost = expands + revealed" (o.Simulate.expands + o.Simulate.revealed)
    o.Simulate.navigation_cost

let test_target_already_visible () =
  let nav = fixture () in
  let o = Simulate.to_target (Navigation.start Navigation.Static nav) ~target:0 in
  Alcotest.(check int) "no expands" 0 o.Simulate.expands;
  Alcotest.(check int) "zero cost" 0 o.Simulate.navigation_cost

let test_show_results_counted () =
  let nav = fixture () in
  let o = Simulate.to_target ~show_results:true (Navigation.start Navigation.Static nav) ~target:3 in
  Alcotest.(check int) "listed = component distinct" 12 o.Simulate.results_listed;
  Alcotest.(check int) "total adds listing" (o.Simulate.navigation_cost + 12) o.Simulate.total_cost

let test_bionav_reaches_every_node () =
  let nav = fixture () in
  for target = 0 to Nav_tree.size nav - 1 do
    let o = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
    Alcotest.(check bool) "terminates with bounded cost" true (o.Simulate.navigation_cost < 1000)
  done

let test_history_chronological () =
  let nav = fixture () in
  let o = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target:6 in
  Alcotest.(check int) "history length = expands" o.Simulate.expands
    (List.length o.Simulate.history);
  let total_revealed =
    List.fold_left (fun a (r : Navigation.expand_record) -> a + r.Navigation.n_revealed) 0
      o.Simulate.history
  in
  Alcotest.(check int) "revealed sums" o.Simulate.revealed total_revealed

let test_to_concept () =
  let nav = fixture () in
  let o1 = Simulate.to_concept (Navigation.start Navigation.Static nav) ~concept:3 in
  let o2 = Simulate.to_target (Navigation.start Navigation.Static nav) ~target:3 in
  Alcotest.(check int) "same navigation" o2.Simulate.navigation_cost o1.Simulate.navigation_cost

let test_to_concept_rejects_missing () =
  let nav = fixture () in
  Alcotest.(check bool) "missing concept" true
    (try
       ignore (Simulate.to_concept (Navigation.start Navigation.Static nav) ~concept:9999);
       false
     with Invalid_argument _ -> true)

let test_to_target_rejects_out_of_range () =
  let nav = fixture () in
  Alcotest.(check bool) "out of range" true
    (try
       ignore (Simulate.to_target (Navigation.start Navigation.Static nav) ~target:99);
       false
     with Invalid_argument _ -> true)

(* Integration on a generated corpus: both strategies reach random targets,
   and static cost equals the sum of children counts along the target's
   path plus the number of levels. *)
let generated_nav =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:71 () in
     let m = G.generate ~params:{ G.small_params with G.n_citations = 400 } ~seed:72 h in
     let db = DB.of_medline m in
     Nav_tree.of_database db (Docset.of_list (List.init 60 (fun i -> i * 2))))

let test_static_cost_formula_on_generated () =
  let nav = Lazy.force generated_nav in
  let target = Nav_tree.size nav - 1 in
  let o = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
  (* Expected: expanding each node on the root path reveals its children. *)
  let rec path_up acc n = if n = -1 then acc else path_up (n :: acc) (Nav_tree.parent nav n) in
  let path = path_up [] (Nav_tree.parent nav target) in
  let expected_revealed =
    List.fold_left (fun a n -> a + List.length (Nav_tree.children nav n)) 0 path
  in
  Alcotest.(check int) "revealed" expected_revealed o.Simulate.revealed;
  Alcotest.(check int) "expands" (List.length path) o.Simulate.expands

let test_bionav_vs_static_on_generated () =
  let nav = Lazy.force generated_nav in
  let targets = [ Nav_tree.size nav / 2; Nav_tree.size nav - 3; 5 ] in
  List.iter
    (fun target ->
      let st = Simulate.to_target (Navigation.start Navigation.Static nav) ~target in
      let bn = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
      (* Not asserting dominance per-target (the heuristic can lose on tiny
         trees); assert both terminate with sane costs. *)
      Alcotest.(check bool) "static sane" true (st.Simulate.navigation_cost > 0);
      Alcotest.(check bool) "bionav sane" true (bn.Simulate.navigation_cost > 0))
    targets

let test_deterministic_outcomes () =
  let nav = Lazy.force generated_nav in
  let target = Nav_tree.size nav - 1 in
  let a = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
  let b = Simulate.to_target (Navigation.start (Navigation.bionav ()) nav) ~target in
  Alcotest.(check int) "same cost" a.Simulate.navigation_cost b.Simulate.navigation_cost;
  Alcotest.(check int) "same expands" a.Simulate.expands b.Simulate.expands

let () =
  Alcotest.run "simulate"
    [
      ( "fixture",
        [
          Alcotest.test_case "static depth" `Quick test_static_expands_equal_target_depth;
          Alcotest.test_case "already visible" `Quick test_target_already_visible;
          Alcotest.test_case "show results" `Quick test_show_results_counted;
          Alcotest.test_case "bionav reaches all" `Quick test_bionav_reaches_every_node;
          Alcotest.test_case "history chronological" `Quick test_history_chronological;
          Alcotest.test_case "to_concept" `Quick test_to_concept;
          Alcotest.test_case "rejects missing concept" `Quick test_to_concept_rejects_missing;
          Alcotest.test_case "rejects bad target" `Quick test_to_target_rejects_out_of_range;
        ] );
      ( "generated",
        [
          Alcotest.test_case "static cost formula" `Quick test_static_cost_formula_on_generated;
          Alcotest.test_case "both strategies sane" `Quick test_bionav_vs_static_on_generated;
          Alcotest.test_case "deterministic" `Quick test_deterministic_outcomes;
        ] );
    ]
