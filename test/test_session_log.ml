open Bionav_util
open Bionav_core
module SL = Session_log

let nav () =
  let parent = [| -1; 0; 1; 1; 0; 4 |] in
  let h = Bionav_mesh.Hierarchy.of_parents parent in
  let attachments =
    List.init 5 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 15 (fun j -> (node * 20) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 400)

let test_text_roundtrip () =
  let t = [ SL.Expand 3; SL.Show_results 7; SL.Backtrack; SL.Expand 1 ] in
  Alcotest.(check bool) "roundtrip" true (SL.of_string (SL.to_string t) = t)

let test_parse_tolerates_comments () =
  let t = SL.of_string "# hello\n\nexpand 4\n  show 2  \n" in
  Alcotest.(check bool) "parsed" true (t = [ SL.Expand 4; SL.Show_results 2 ])

let test_parse_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (SL.of_string text);
           false
         with Invalid_argument _ -> true))
    [ "explode 3\n"; "expand x\n"; "show\n"; "expand 1 2\n" ]

let test_recording_produces_replayable_transcript () =
  let session = Navigation.start Navigation.Static (nav ()) in
  let r = SL.record session in
  ignore (SL.expand r 0);
  ignore (SL.expand r 1);
  ignore (SL.show_results r 2);
  let t = SL.transcript r in
  Alcotest.(check int) "three actions" 3 (List.length t);
  (* Replay on a fresh session over the same tree applies everything. *)
  let session2 = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay session2 t in
  Alcotest.(check int) "all applied" 3 outcome.SL.applied;
  Alcotest.(check int) "none skipped" 0 outcome.SL.skipped;
  Alcotest.(check int) "same cost" (Navigation.total_cost (Navigation.stats session))
    (Navigation.total_cost outcome.SL.stats)

let test_noop_actions_not_recorded () =
  let session = Navigation.start Navigation.Static (nav ()) in
  let r = SL.record session in
  Alcotest.(check bool) "failed backtrack" false (SL.backtrack r);
  ignore (SL.expand r 0);
  ignore (SL.expand r 0);
  (* second expand of the singleton upper is a no-op *)
  Alcotest.(check int) "only real actions" 1 (List.length (SL.transcript r))

let test_replay_skips_inapplicable () =
  let t = [ SL.Expand 0; SL.Expand 9999; SL.Show_results 5; SL.Backtrack; SL.Backtrack ] in
  let session = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay session t in
  (* expand root: ok; concept 9999: skip; show 5 (hidden after root expand?
     node for concept 5 is visible only if the cut revealed it). *)
  Alcotest.(check int) "total accounted" 5 (outcome.SL.applied + outcome.SL.skipped);
  Alcotest.(check bool) "some skipped" true (outcome.SL.skipped >= 1)

let test_replay_across_strategies () =
  (* Record a BioNav session, replay on a static session: actions address
     concepts, so whatever is visible still applies. *)
  let s1 = Navigation.start (Navigation.bionav ()) (nav ()) in
  let r = SL.record s1 in
  ignore (SL.expand r 0);
  let t = SL.transcript r in
  let s2 = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay s2 t in
  Alcotest.(check int) "root expand applies" 1 outcome.SL.applied

let test_save_load () =
  let t = [ SL.Expand 1; SL.Backtrack ] in
  let path = Filename.temp_file "bionav_session" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      SL.save t path;
      Alcotest.(check bool) "roundtrip" true (SL.load path = t))

let () =
  Alcotest.run "session_log"
    [
      ( "unit",
        [
          Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "comments" `Quick test_parse_tolerates_comments;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "record/replay" `Quick test_recording_produces_replayable_transcript;
          Alcotest.test_case "noop not recorded" `Quick test_noop_actions_not_recorded;
          Alcotest.test_case "replay skips" `Quick test_replay_skips_inapplicable;
          Alcotest.test_case "across strategies" `Quick test_replay_across_strategies;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
    ]
