open Bionav_util
open Bionav_core
module SL = Session_log

let nav () =
  let parent = [| -1; 0; 1; 1; 0; 4 |] in
  let h = Bionav_mesh.Hierarchy.of_parents parent in
  let attachments =
    List.init 5 (fun i ->
        let node = i + 1 in
        (node, Docset.of_list (List.init 15 (fun j -> (node * 20) + j))))
  in
  Nav_tree.build ~hierarchy:h ~attachments ~total_count:(fun _ -> 400)

let test_text_roundtrip () =
  let t = [ SL.Expand 3; SL.Show_results 7; SL.Backtrack; SL.Expand 1 ] in
  Alcotest.(check bool) "roundtrip" true (SL.of_string (SL.to_string t) = t)

let test_parse_tolerates_comments () =
  let t = SL.of_string "# hello\n\nexpand 4\n  show 2  \n" in
  Alcotest.(check bool) "parsed" true (t = [ SL.Expand 4; SL.Show_results 2 ])

let test_parse_rejects_garbage () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (SL.of_string text);
           false
         with Invalid_argument _ -> true))
    [ "explode 3\n"; "expand x\n"; "show\n"; "expand 1 2\n" ]

let test_recording_produces_replayable_transcript () =
  let session = Navigation.start Navigation.Static (nav ()) in
  let r = SL.record session in
  ignore (SL.expand r 0);
  ignore (SL.expand r 1);
  ignore (SL.show_results r 2);
  let t = SL.transcript r in
  Alcotest.(check int) "three actions" 3 (List.length t);
  (* Replay on a fresh session over the same tree applies everything. *)
  let session2 = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay session2 t in
  Alcotest.(check int) "all applied" 3 outcome.SL.applied;
  Alcotest.(check int) "none skipped" 0 outcome.SL.skipped;
  Alcotest.(check int) "same cost" (Navigation.total_cost (Navigation.stats session))
    (Navigation.total_cost outcome.SL.stats)

let test_noop_actions_not_recorded () =
  let session = Navigation.start Navigation.Static (nav ()) in
  let r = SL.record session in
  Alcotest.(check bool) "failed backtrack" false (SL.backtrack r);
  ignore (SL.expand r 0);
  ignore (SL.expand r 0);
  (* second expand of the singleton upper is a no-op *)
  Alcotest.(check int) "only real actions" 1 (List.length (SL.transcript r))

let test_replay_skips_inapplicable () =
  let t = [ SL.Expand 0; SL.Expand 9999; SL.Show_results 5; SL.Backtrack; SL.Backtrack ] in
  let session = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay session t in
  (* expand root: ok; concept 9999: skip; show 5 (hidden after root expand?
     node for concept 5 is visible only if the cut revealed it). *)
  Alcotest.(check int) "total accounted" 5 (outcome.SL.applied + outcome.SL.skipped);
  Alcotest.(check bool) "some skipped" true (outcome.SL.skipped >= 1)

let test_replay_across_strategies () =
  (* Record a BioNav session, replay on a static session: actions address
     concepts, so whatever is visible still applies. *)
  let s1 = Navigation.start (Navigation.bionav ()) (nav ()) in
  let r = SL.record s1 in
  ignore (SL.expand r 0);
  let t = SL.transcript r in
  let s2 = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay s2 t in
  Alcotest.(check int) "root expand applies" 1 outcome.SL.applied

let test_save_load () =
  let t = [ SL.Expand 1; SL.Backtrack ] in
  let path = Filename.temp_file "bionav_session" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      SL.save t path;
      Alcotest.(check bool) "roundtrip" true (SL.load path = t))

(* --- transcript v2 ------------------------------------------------------- *)

let sample_events =
  [
    SL.Expanded { concept = 0; revealed = [ 1; 4 ] };
    SL.Expanded { concept = 1; revealed = [] };
    SL.Shown { concept = 4; n_listed = 15 };
    SL.Backtracked;
  ]

let test_v2_roundtrip () =
  let text = SL.events_to_string sample_events in
  Alcotest.(check bool) "v2 header" true
    (String.length text > 30 && String.sub text 0 30 = "# bionav session transcript v2");
  Alcotest.(check bool) "events roundtrip" true (SL.events_of_string text = sample_events);
  (* The action view of a v2 transcript drops outcomes but keeps order. *)
  Alcotest.(check bool) "action view" true
    (SL.of_string text = [ SL.Expand 0; SL.Expand 1; SL.Show_results 4; SL.Backtrack ])

let test_v1_still_parses () =
  (* Headerless and v1-headered files are the original wire format. *)
  let expected = [ SL.Expand 3; SL.Show_results 7; SL.Backtrack ] in
  List.iter
    (fun text -> Alcotest.(check bool) text true (SL.of_string text = expected))
    [
      "expand 3\nshow 7\nbacktrack\n";
      "# bionav session transcript v1\nexpand 3\nshow 7\nbacktrack\n";
    ];
  (* v1 events surface empty outcomes rather than failing. *)
  Alcotest.(check bool) "v1 events" true
    (SL.events_of_string "expand 3\n" = [ SL.Expanded { concept = 3; revealed = [] } ])

let test_unknown_version_names_supported () =
  match SL.events_of_string "# bionav session transcript v9\nexpand 1 0\n" with
  | _ -> Alcotest.fail "v9 accepted"
  | exception Invalid_argument msg ->
      let has needle =
        let n = String.length needle in
        let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "names supported versions" true (has "v1" && has "v2");
      Alcotest.(check bool) "says unsupported" true (has "unsupported")

let test_v2_corruption_rejected () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (SL.events_of_string text);
           false
         with Invalid_argument _ -> true))
    [
      (* truncated reveal list: declares 3, carries 2 *)
      "# bionav session transcript v2\nexpand 0 3 1 4\n";
      (* overlong reveal list *)
      "# bionav session transcript v2\nexpand 0 1 1 4\n";
      (* bad ids *)
      "# bionav session transcript v2\nexpand x 0\n";
      "# bionav session transcript v2\nshow 4 many\n";
      (* v2 show without its outcome field is a v1 line in a v2 file *)
      "# bionav session transcript v2\nshow 4\n";
      (* conflicting headers: two transcripts concatenated *)
      "# bionav session transcript v1\nexpand 3\n# bionav session transcript v2\nexpand 0 0\n";
      "# bionav session transcript v2\nexpand 0 0\n# bionav session transcript v1\nexpand 3\n";
    ]

let test_recorder_events_carry_outcomes () =
  let session = Navigation.start Navigation.Static (nav ()) in
  let r = SL.record session in
  let revealed = SL.expand r 0 in
  let results = SL.show_results r (List.hd revealed) in
  match SL.events r with
  | [ SL.Expanded { concept = 0; revealed = rv }; SL.Shown { n_listed; _ } ] ->
      Alcotest.(check int) "reveal arity" (List.length revealed) (List.length rv);
      Alcotest.(check bool) "real concepts" true (List.for_all (fun c -> c >= 0) rv);
      Alcotest.(check int) "listed citations" (Docset.cardinal results) n_listed;
      Alcotest.(check bool) "nonempty listing" true (n_listed > 0)
  | _ -> Alcotest.fail "unexpected event shape"

(* --- navigation-space actions (v2) --------------------------------------- *)

let has_sub msg needle =
  let n = String.length needle in
  let rec go i = i + n <= String.length msg && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let space_events =
  [
    SL.Expanded { concept = 0; revealed = [ 1; 4 ] };
    SL.Refined { concept = 4 };
    SL.Faceted;
    SL.Unrefined;
    SL.Unrefined;
    SL.Shown { concept = 1; n_listed = 15 };
  ]

let test_space_events_roundtrip () =
  let text = SL.events_to_string space_events in
  (* Space-changing actions ride in the existing v2 wire format — no
     version bump. *)
  Alcotest.(check bool) "still v2" true
    (String.sub text 0 30 = "# bionav session transcript v2");
  Alcotest.(check bool) "events roundtrip" true (SL.events_of_string text = space_events);
  Alcotest.(check bool) "action view" true
    (SL.of_string text
    = [ SL.Expand 0; SL.Refine 4; SL.Facet; SL.Unrefine; SL.Unrefine; SL.Show_results 1 ])

let test_v1_writer_refuses_space_actions () =
  List.iter
    (fun action ->
      match SL.to_string [ SL.Expand 0; action ] with
      | _ -> Alcotest.fail "v1 writer accepted a space-changing action"
      | exception Invalid_argument msg ->
          Alcotest.(check bool) "points at v2" true (has_sub msg "v2"))
    [ SL.Refine 4; SL.Unrefine; SL.Facet ]

let test_v1_reader_rejects_space_lines_loudly () =
  (* A refine line in a v1 (headerless) transcript is an unknown action;
     the error must name the v1-supported set so the reader knows the line
     is from a newer writer, not garbage. *)
  match SL.events_of_string "expand 3\nrefine 4\n" with
  | _ -> Alcotest.fail "v1 reader accepted refine"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the supported set" true
        (has_sub msg "expand, show, backtrack");
      Alcotest.(check bool) "does not claim refine supported" true
        (not (has_sub msg "refine,"))

let test_v2_unknown_action_names_supported_set () =
  match SL.events_of_string "# bionav session transcript v2\npivot 3\n" with
  | _ -> Alcotest.fail "unknown v2 action accepted"
  | exception Invalid_argument msg ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) needle true (has_sub msg needle))
        [ "expand"; "show"; "backtrack"; "refine"; "unrefine"; "facet" ]

let test_v2_malformed_space_lines_rejected () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (SL.events_of_string text);
           false
         with Invalid_argument _ -> true))
    [
      "# bionav session transcript v2\nrefine\n";
      "# bionav session transcript v2\nrefine x\n";
      "# bionav session transcript v2\nunrefine 3\n";
      "# bionav session transcript v2\nfacet 1\n";
    ]

let test_replay_skips_space_actions () =
  (* [replay] acts on one [Navigation.t] — a single space — so refine,
     unrefine and facet must skip (counted), never misapply. *)
  let t = [ SL.Expand 0; SL.Refine 1; SL.Facet; SL.Unrefine ] in
  let session = Navigation.start Navigation.Static (nav ()) in
  let outcome = SL.replay session t in
  Alcotest.(check int) "expand applied" 1 outcome.SL.applied;
  Alcotest.(check int) "space actions skipped" 3 outcome.SL.skipped

let test_save_load_events () =
  let path = Filename.temp_file "bionav_session" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      SL.save_events sample_events path;
      Alcotest.(check bool) "roundtrip" true (SL.load_events path = sample_events);
      (* The v1 action loader reads v2 files too. *)
      Alcotest.(check bool) "action view" true
        (SL.load path = List.map SL.action_of_event sample_events))

let () =
  Alcotest.run "session_log"
    [
      ( "unit",
        [
          Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "comments" `Quick test_parse_tolerates_comments;
          Alcotest.test_case "rejects garbage" `Quick test_parse_rejects_garbage;
          Alcotest.test_case "record/replay" `Quick test_recording_produces_replayable_transcript;
          Alcotest.test_case "noop not recorded" `Quick test_noop_actions_not_recorded;
          Alcotest.test_case "replay skips" `Quick test_replay_skips_inapplicable;
          Alcotest.test_case "across strategies" `Quick test_replay_across_strategies;
          Alcotest.test_case "save/load" `Quick test_save_load;
        ] );
      ( "v2",
        [
          Alcotest.test_case "roundtrip" `Quick test_v2_roundtrip;
          Alcotest.test_case "v1 still parses" `Quick test_v1_still_parses;
          Alcotest.test_case "unknown version" `Quick test_unknown_version_names_supported;
          Alcotest.test_case "corruption rejected" `Quick test_v2_corruption_rejected;
          Alcotest.test_case "recorder outcomes" `Quick test_recorder_events_carry_outcomes;
          Alcotest.test_case "save/load events" `Quick test_save_load_events;
        ] );
      ( "spaces",
        [
          Alcotest.test_case "space events roundtrip" `Quick test_space_events_roundtrip;
          Alcotest.test_case "v1 writer refuses" `Quick test_v1_writer_refuses_space_actions;
          Alcotest.test_case "v1 reader fails loudly" `Quick
            test_v1_reader_rejects_space_lines_loudly;
          Alcotest.test_case "v2 unknown action names set" `Quick
            test_v2_unknown_action_names_supported_set;
          Alcotest.test_case "v2 malformed space lines" `Quick
            test_v2_malformed_space_lines_rejected;
          Alcotest.test_case "replay skips space actions" `Quick
            test_replay_skips_space_actions;
        ] );
    ]
