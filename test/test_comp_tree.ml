open Bionav_util
open Bionav_core

let mk ?labels ?tags ?multiplicity ?sub_weights parent results totals =
  Comp_tree.make ~parent
    ~results:(Array.map Docset.of_list results)
    ~totals ?labels ?tags ?multiplicity ?sub_weights ()

(*      0 {1,2}
       / \
  {1} 1   2 {2,3}
      |
      3 {4}          *)
let sample () =
  mk [| -1; 0; 0; 1 |] [| [ 1; 2 ]; [ 1 ]; [ 2; 3 ]; [ 4 ] |] [| 100; 10; 20; 5 |]

let test_structure () =
  let t = sample () in
  Alcotest.(check int) "size" 4 (Comp_tree.size t);
  Alcotest.(check int) "root" 0 (Comp_tree.root t);
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Comp_tree.children t 0);
  Alcotest.(check int) "parent of 3" 1 (Comp_tree.parent t 3);
  Alcotest.(check bool) "leaf" true (Comp_tree.is_leaf t 3);
  Alcotest.(check bool) "internal" false (Comp_tree.is_leaf t 1);
  Alcotest.(check int) "depth" 2 (Comp_tree.depth t 3)

let test_counts () =
  let t = sample () in
  Alcotest.(check int) "L(0)" 2 (Comp_tree.result_count t 0);
  Alcotest.(check int) "LT(0)" 100 (Comp_tree.total t 0);
  Alcotest.(check int) "distinct all" 4 (Docset.cardinal (Comp_tree.all_results t));
  (* 6 attached, 4 distinct. *)
  Alcotest.(check int) "duplicates" 2 (Comp_tree.duplicate_count t)

let test_subtree_nodes () =
  let t = sample () in
  Alcotest.(check (list int)) "subtree of 1" [ 1; 3 ] (Comp_tree.subtree_nodes t 1);
  Alcotest.(check (list int)) "whole tree" [ 0; 1; 3; 2 ] (Comp_tree.subtree_nodes t 0)

let test_distinct_of_nodes () =
  let t = sample () in
  Alcotest.(check int) "subset distinct" 3
    (Docset.cardinal (Comp_tree.distinct_of_nodes t [ 0; 2 ]))

let test_defaults () =
  let t = sample () in
  Alcotest.(check int) "default tag" 2 (Comp_tree.tag t 2);
  Alcotest.(check string) "default label" "c2" (Comp_tree.label t 2);
  Alcotest.(check int) "default multiplicity" 1 (Comp_tree.multiplicity t 2);
  Alcotest.(check (array (float 1e-9))) "default sub_weights" [| 2. |] (Comp_tree.sub_weights t 2)

let test_custom_metadata () =
  let t =
    mk ~labels:[| "r"; "a" |] ~tags:[| 10; 20 |] ~multiplicity:[| 3; 1 |]
      ~sub_weights:[| [| 1.; 2.; 3. |]; [| 4. |] |]
      [| -1; 0 |] [| [ 1 ]; [ 2 ] |] [| 5; 5 |]
  in
  Alcotest.(check string) "label" "a" (Comp_tree.label t 1);
  Alcotest.(check int) "tag" 20 (Comp_tree.tag t 1);
  Alcotest.(check int) "multiplicity" 3 (Comp_tree.multiplicity t 0);
  Alcotest.(check (array (float 1e-9))) "sub_weights" [| 1.; 2.; 3. |] (Comp_tree.sub_weights t 0)

let rejects f = try ignore (f ()); false with Invalid_argument _ -> true

let test_validation () =
  Alcotest.(check bool) "empty" true (rejects (fun () -> mk [||] [||] [||]));
  Alcotest.(check bool) "bad root" true
    (rejects (fun () -> mk [| 0 |] [| [ 1 ] |] [| 1 |]));
  Alcotest.(check bool) "forward parent" true
    (rejects (fun () -> mk [| -1; 2; 0 |] [| [ 1 ]; [ 1 ]; [ 1 ] |] [| 1; 1; 1 |]));
  Alcotest.(check bool) "LT < L" true
    (rejects (fun () -> mk [| -1 |] [| [ 1; 2 ] |] [| 1 |]));
  Alcotest.(check bool) "results but zero LT" true
    (rejects (fun () -> mk [| -1; 0 |] [| []; [ 1 ] |] [| 0; 0 |]));
  Alcotest.(check bool) "multiplicity < 1" true
    (rejects (fun () ->
         mk ~multiplicity:[| 0 |] [| -1 |] [| [ 1 ] |] [| 1 |]))

let test_singleton () =
  let t = Comp_tree.singleton ~results:(Docset.of_list [ 7; 8 ]) ~total:10 ~label:"solo" () in
  Alcotest.(check int) "size" 1 (Comp_tree.size t);
  Alcotest.(check string) "label" "solo" (Comp_tree.label t 0);
  Alcotest.(check int) "distinct" 2 (Docset.cardinal (Comp_tree.all_results t))

let test_empty_root_results_allowed () =
  let t = mk [| -1; 0 |] [| []; [ 1 ] |] [| 0; 5 |] in
  Alcotest.(check int) "root L" 0 (Comp_tree.result_count t 0);
  Alcotest.(check int) "distinct" 1 (Docset.cardinal (Comp_tree.all_results t))

let test_pp_renders () =
  let t = sample () in
  let s = Format.asprintf "%a" Comp_tree.pp t in
  Alcotest.(check bool) "mentions all nodes" true (String.length s > 20)

let () =
  Alcotest.run "comp_tree"
    [
      ( "unit",
        [
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "subtree nodes" `Quick test_subtree_nodes;
          Alcotest.test_case "distinct of nodes" `Quick test_distinct_of_nodes;
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "custom metadata" `Quick test_custom_metadata;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "empty root results" `Quick test_empty_root_results_allowed;
          Alcotest.test_case "pp" `Quick test_pp_renders;
        ] );
    ]
